file(REMOVE_RECURSE
  "CMakeFiles/fairbc_recsys.dir/src/recsys/cf.cc.o"
  "CMakeFiles/fairbc_recsys.dir/src/recsys/cf.cc.o.d"
  "CMakeFiles/fairbc_recsys.dir/src/recsys/recommend_graph.cc.o"
  "CMakeFiles/fairbc_recsys.dir/src/recsys/recommend_graph.cc.o.d"
  "libfairbc_recsys.a"
  "libfairbc_recsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairbc_recsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
