# Empty dependencies file for fairbc_recsys.
# This may be replaced when dependencies are built.
