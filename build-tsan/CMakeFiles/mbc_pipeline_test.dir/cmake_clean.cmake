file(REMOVE_RECURSE
  "CMakeFiles/mbc_pipeline_test.dir/tests/mbc_pipeline_test.cc.o"
  "CMakeFiles/mbc_pipeline_test.dir/tests/mbc_pipeline_test.cc.o.d"
  "mbc_pipeline_test"
  "mbc_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
