# Empty dependencies file for mbc_pipeline_test.
# This may be replaced when dependencies are built.
