file(REMOVE_RECURSE
  "CMakeFiles/fair_vector_test.dir/tests/fair_vector_test.cc.o"
  "CMakeFiles/fair_vector_test.dir/tests/fair_vector_test.cc.o.d"
  "fair_vector_test"
  "fair_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fair_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
