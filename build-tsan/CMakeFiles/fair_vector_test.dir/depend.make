# Empty dependencies file for fair_vector_test.
# This may be replaced when dependencies are built.
