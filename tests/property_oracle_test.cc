// Property tests: every production enumerator must match the brute-force
// oracle exactly on randomized small graphs across the parameter grid,
// for all four models (SSFBC, BSFBC, PSSFBC, PBSFBC), all orderings and
// all pruning levels.

#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Collect;
using ::fairbc::testing::RandomSmallGraph;

struct GridCase {
  std::uint64_t seed;
  double density;
  std::uint32_t alpha;
  std::uint32_t beta;
  std::uint32_t delta;
  double theta;
};

std::vector<GridCase> MakeGrid() {
  std::vector<GridCase> grid;
  std::uint64_t seed = 1;
  for (double density : {0.25, 0.5, 0.75}) {
    for (std::uint32_t alpha : {1u, 2u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        for (std::uint32_t delta : {0u, 1u, 2u}) {
          for (double theta : {0.0, 0.4}) {
            grid.push_back({seed++, density, alpha, beta, delta, theta});
          }
        }
      }
    }
  }
  return grid;
}

class OracleGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(OracleGridTest, SsfbcEnginesMatchBruteForce) {
  const GridCase& c = GetParam();
  BipartiteGraph g = RandomSmallGraph(c.seed, /*max_side=*/7, c.density);
  FairBicliqueParams params{c.alpha, c.beta, c.delta, c.theta};
  auto oracle = testing::Canonicalize(BruteForceSSFBC(g, params));

  for (VertexOrdering ord : {VertexOrdering::kId, VertexOrdering::kDegreeDesc}) {
    for (PruningLevel prune :
         {PruningLevel::kNone, PruningLevel::kCore, PruningLevel::kColorful}) {
      EnumOptions options;
      options.ordering = ord;
      options.pruning = prune;
      EXPECT_EQ(Collect(EnumerateSSFBC, g, params, options), oracle)
          << "FairBCEM ord=" << static_cast<int>(ord)
          << " prune=" << static_cast<int>(prune) << " " << g.DebugString();
      EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params, options), oracle)
          << "FairBCEM++ ord=" << static_cast<int>(ord)
          << " prune=" << static_cast<int>(prune) << " " << g.DebugString();
      EXPECT_EQ(Collect(EnumerateSSFBCNaive, g, params, options), oracle)
          << "NSF ord=" << static_cast<int>(ord)
          << " prune=" << static_cast<int>(prune) << " " << g.DebugString();
    }
  }
}

TEST_P(OracleGridTest, BsfbcEnginesMatchBruteForce) {
  const GridCase& c = GetParam();
  BipartiteGraph g = RandomSmallGraph(c.seed + 7777, /*max_side=*/6, c.density);
  FairBicliqueParams params{c.alpha, c.beta, c.delta, c.theta};
  auto oracle = testing::Canonicalize(BruteForceBSFBC(g, params));

  for (VertexOrdering ord : {VertexOrdering::kId, VertexOrdering::kDegreeDesc}) {
    for (PruningLevel prune :
         {PruningLevel::kNone, PruningLevel::kCore, PruningLevel::kColorful}) {
      EnumOptions options;
      options.ordering = ord;
      options.pruning = prune;
      EXPECT_EQ(Collect(EnumerateBSFBC, g, params, options), oracle)
          << "BFairBCEM ord=" << static_cast<int>(ord)
          << " prune=" << static_cast<int>(prune) << " " << g.DebugString();
      EXPECT_EQ(Collect(EnumerateBSFBCPlusPlus, g, params, options), oracle)
          << "BFairBCEM++ ord=" << static_cast<int>(ord)
          << " prune=" << static_cast<int>(prune) << " " << g.DebugString();
      EXPECT_EQ(Collect(EnumerateBSFBCNaive, g, params, options), oracle)
          << "BNSF ord=" << static_cast<int>(ord)
          << " prune=" << static_cast<int>(prune) << " " << g.DebugString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, OracleGridTest,
                         ::testing::ValuesIn(MakeGrid()));

// Larger random graphs (no oracle, too big for brute force): the three
// SSFBC engines must agree with each other, as must the three BSFBC
// engines.
TEST(OracleCrossCheck, EnginesAgreeOnMediumGraphs) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    BipartiteGraph g = RandomSmallGraph(seed, /*max_side=*/14, 0.35);
    FairBicliqueParams params{2, 2, 1, 0.0};
    auto a = Collect(EnumerateSSFBC, g, params);
    auto b = Collect(EnumerateSSFBCPlusPlus, g, params);
    auto c = Collect(EnumerateSSFBCNaive, g, params);
    EXPECT_EQ(a, b) << g.DebugString();
    EXPECT_EQ(a, c) << g.DebugString();

    auto ba = Collect(EnumerateBSFBC, g, params);
    auto bb = Collect(EnumerateBSFBCPlusPlus, g, params);
    EXPECT_EQ(ba, bb) << g.DebugString();
  }
}

// Every emitted SSFBC must literally satisfy Def. 3 (direct check,
// independent of the maximality machinery).
TEST(OracleInvariants, EmittedSsfbcSatisfyDefinition) {
  BipartiteGraph g = RandomSmallGraph(99, /*max_side=*/10, 0.4);
  FairBicliqueParams params{2, 1, 1, 0.0};
  CollectSink sink;
  EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
  for (const Biclique& b : sink.results()) {
    ASSERT_FALSE(b.upper.empty());
    ASSERT_FALSE(b.lower.empty());
    EXPECT_GE(b.upper.size(), params.alpha);
    // Completeness of edges.
    for (VertexId u : b.upper) {
      for (VertexId v : b.lower) {
        EXPECT_TRUE(g.HasEdge(u, v)) << b.DebugString();
      }
    }
    // Fairness of the lower side.
    SizeVector sizes(g.NumAttrs(Side::kLower), 0);
    for (VertexId v : b.lower) ++sizes[g.Attr(Side::kLower, v)];
    EXPECT_TRUE(IsFeasibleVector(sizes, params.LowerSpec()))
        << b.DebugString();
  }
}

}  // namespace
}  // namespace fairbc
