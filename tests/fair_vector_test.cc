#include <gtest/gtest.h>

#include <cstdint>

#include "fairness/fair_vector.h"

namespace fairbc {
namespace {

// Brute-force enumeration of all feasible vectors within caps, for
// cross-checking MaximalFairVectors.
std::vector<SizeVector> AllFeasible(const SizeVector& counts,
                                    const FairnessSpec& spec) {
  std::vector<SizeVector> out;
  SizeVector t(counts.size(), 0);
  auto dfs = [&](auto&& self, std::size_t i) -> void {
    if (i == counts.size()) {
      if (IsFeasibleVector(t, spec)) out.push_back(t);
      return;
    }
    for (std::uint32_t x = 0; x <= counts[i]; ++x) {
      t[i] = x;
      self(self, i + 1);
    }
    t[i] = 0;
  };
  dfs(dfs, 0);
  return out;
}

std::vector<SizeVector> BruteMaximal(const SizeVector& counts,
                                     const FairnessSpec& spec) {
  auto feasible = AllFeasible(counts, spec);
  std::vector<SizeVector> maximal;
  for (const auto& a : feasible) {
    bool zero = true;
    for (auto x : a) zero &= (x == 0);
    if (zero && spec.min_per_class == 0) {
      // The empty set: maximal only when nothing else is feasible.
    }
    bool dominated = false;
    for (const auto& b : feasible) {
      if (StrictlyDominated(a, b)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(a);
  }
  std::sort(maximal.begin(), maximal.end());
  return maximal;
}

TEST(IsFeasibleVector, BasicCases) {
  FairnessSpec spec{2, 1, 0.0};
  EXPECT_TRUE(IsFeasibleVector({2, 3}, spec));
  EXPECT_TRUE(IsFeasibleVector({3, 3}, spec));
  EXPECT_FALSE(IsFeasibleVector({1, 3}, spec));   // below k
  EXPECT_FALSE(IsFeasibleVector({2, 4}, spec));   // delta exceeded
  EXPECT_TRUE(IsFeasibleVector({}, spec));        // empty domain
}

TEST(IsFeasibleVector, ProportionalConstraint) {
  FairnessSpec spec{1, 5, 0.4};
  EXPECT_TRUE(IsFeasibleVector({2, 3}, spec));   // 2/5 = 0.4 exactly
  EXPECT_FALSE(IsFeasibleVector({1, 3}, spec));  // 1/4 < 0.4
  EXPECT_TRUE(IsFeasibleVector({4, 4}, spec));
}

TEST(IsFeasibleVector, ZeroVectorFeasibleOnlyWhenKZero) {
  EXPECT_TRUE(IsFeasibleVector({0, 0}, FairnessSpec{0, 0, 0.0}));
  EXPECT_FALSE(IsFeasibleVector({0, 0}, FairnessSpec{1, 0, 0.0}));
}

TEST(StrictlyDominated, Basics) {
  EXPECT_TRUE(StrictlyDominated({1, 2}, {1, 3}));
  EXPECT_FALSE(StrictlyDominated({1, 3}, {1, 2}));
  EXPECT_FALSE(StrictlyDominated({1, 2}, {1, 2}));
  EXPECT_FALSE(StrictlyDominated({2, 1}, {1, 3}));
}

TEST(MaximalFairVectors, ClosedFormPlainModel) {
  // counts (5,3), delta 1 -> unique maximal (4,3).
  auto result = MaximalFairVectors({5, 3}, FairnessSpec{2, 1, 0.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (SizeVector{4, 3}));
}

TEST(MaximalFairVectors, InfeasibleWhenClassTooSmall) {
  EXPECT_TRUE(MaximalFairVectors({5, 1}, FairnessSpec{2, 1, 0.0}).empty());
}

TEST(MaximalFairVectors, DeltaZeroBalanced) {
  auto result = MaximalFairVectors({7, 4}, FairnessSpec{1, 0, 0.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (SizeVector{4, 4}));
}

TEST(MaximalFairVectors, ProportionalCapApplies) {
  // counts (10, 3), delta 5, theta 0.4: cap = floor(3*0.6/0.4) = 4.
  auto result = MaximalFairVectors({10, 3}, FairnessSpec{1, 5, 0.4});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (SizeVector{4, 3}));
}

TEST(MaximalFairVectors, SingleClass) {
  auto result = MaximalFairVectors({6}, FairnessSpec{2, 0, 0.0});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], (SizeVector{6}));
}

// Exhaustive cross-check against brute force over a grid of counts and
// specs, for 2 and 3 classes including proportional constraints.
TEST(MaximalFairVectors, MatchesBruteForceTwoClasses) {
  for (std::uint32_t c0 = 0; c0 <= 5; ++c0) {
    for (std::uint32_t c1 = 0; c1 <= 5; ++c1) {
      for (std::uint32_t k : {0u, 1u, 2u}) {
        for (std::uint32_t delta : {0u, 1u, 3u}) {
          for (double theta : {0.0, 0.3, 0.5}) {
            FairnessSpec spec{k, delta, theta};
            SizeVector counts{c0, c1};
            auto got = MaximalFairVectors(counts, spec);
            std::sort(got.begin(), got.end());
            auto want = BruteMaximal(counts, spec);
            EXPECT_EQ(got, want)
                << "counts=(" << c0 << "," << c1 << ") k=" << k
                << " delta=" << delta << " theta=" << theta;
          }
        }
      }
    }
  }
}

TEST(MaximalFairVectors, MatchesBruteForceThreeClasses) {
  for (std::uint32_t c0 = 0; c0 <= 4; ++c0) {
    for (std::uint32_t c1 = 0; c1 <= 4; ++c1) {
      for (std::uint32_t c2 = 0; c2 <= 4; ++c2) {
        for (std::uint32_t k : {0u, 1u}) {
          for (std::uint32_t delta : {0u, 2u}) {
            for (double theta : {0.0, 0.25}) {
              FairnessSpec spec{k, delta, theta};
              SizeVector counts{c0, c1, c2};
              auto got = MaximalFairVectors(counts, spec);
              std::sort(got.begin(), got.end());
              auto want = BruteMaximal(counts, spec);
              EXPECT_EQ(got, want)
                  << "counts=(" << c0 << "," << c1 << "," << c2 << ") k=" << k
                  << " delta=" << delta << " theta=" << theta;
            }
          }
        }
      }
    }
  }
}

TEST(IsMaximalFairVector, AgreesWithEnumeration) {
  SizeVector counts{5, 3};
  FairnessSpec spec{2, 1, 0.0};
  EXPECT_TRUE(IsMaximalFairVector({4, 3}, counts, spec));
  EXPECT_FALSE(IsMaximalFairVector({3, 3}, counts, spec));
  EXPECT_FALSE(IsMaximalFairVector({4, 2}, counts, spec));
  EXPECT_FALSE(IsMaximalFairVector({5, 3}, counts, spec));  // infeasible
}

TEST(BinomialSaturated, SmallValues) {
  EXPECT_EQ(BinomialSaturated(5, 2), 10u);
  EXPECT_EQ(BinomialSaturated(5, 0), 1u);
  EXPECT_EQ(BinomialSaturated(5, 5), 1u);
  EXPECT_EQ(BinomialSaturated(5, 6), 0u);
  EXPECT_EQ(BinomialSaturated(60, 30), 118264581564861424u);
}

TEST(BinomialSaturated, SaturatesOnOverflow) {
  EXPECT_EQ(BinomialSaturated(1000, 500),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(CountMaximalFairSubsets, ProductOfBinomials) {
  // counts (5,3), t*=(4,3): C(5,4)*C(3,3) = 5.
  EXPECT_EQ(CountMaximalFairSubsets({5, 3}, FairnessSpec{2, 1, 0.0}), 5u);
  // Infeasible -> 0.
  EXPECT_EQ(CountMaximalFairSubsets({5, 1}, FairnessSpec{2, 1, 0.0}), 0u);
  // counts (4,4), delta 0 -> t*=(4,4) -> 1 subset.
  EXPECT_EQ(CountMaximalFairSubsets({4, 4}, FairnessSpec{1, 0, 0.0}), 1u);
}

}  // namespace
}  // namespace fairbc
