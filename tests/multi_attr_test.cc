// Attribute-domain edge cases beyond the paper's two-classes-per-side
// focus: single-class sides (fairness degenerates to size thresholds)
// and three-class sides (including the general proportional search),
// all validated against the brute-force oracle.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "graph/builder.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::Collect;
using ::fairbc::testing::RandomSmallGraph;

TEST(SingleAttrClass, SsfbcMatchesOracle) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5, /*num_attrs=*/1);
    for (std::uint32_t beta : {1u, 2u, 3u}) {
      FairBicliqueParams params{2, beta, 0, 0.0};
      auto oracle = Canonicalize(BruteForceSSFBC(g, params));
      EXPECT_EQ(Collect(EnumerateSSFBC, g, params), oracle)
          << "seed=" << seed << " beta=" << beta;
      EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
          << "seed=" << seed << " beta=" << beta;
    }
  }
}

TEST(SingleAttrClass, DegeneratesToThresholdedMaximalBicliques) {
  // With one class and delta = 0 a fair set is just "size >= beta", so
  // SSFBCs are exactly the maximal bicliques with |L| >= alpha and
  // |R| >= beta (every closure is its own unique maximal fair subset).
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5, /*num_attrs=*/1);
    FairBicliqueParams params{2, 2, 0, 0.0};
    auto fair = Collect(EnumerateSSFBCPlusPlus, g, params);
    auto mbc = Canonicalize(
        BruteForceMaximalBicliques(g, params.alpha, params.beta, 0));
    EXPECT_EQ(fair, mbc) << "seed=" << seed;
  }
}

TEST(ThreeAttrClasses, SsfbcMatchesOracle) {
  for (std::uint64_t seed = 40; seed < 60; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.6, /*num_attrs=*/3);
    for (std::uint32_t delta : {0u, 1u, 2u}) {
      FairBicliqueParams params{1, 1, delta, 0.0};
      auto oracle = Canonicalize(BruteForceSSFBC(g, params));
      EXPECT_EQ(Collect(EnumerateSSFBC, g, params), oracle)
          << "seed=" << seed << " delta=" << delta;
      EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
          << "seed=" << seed << " delta=" << delta;
      EXPECT_EQ(Collect(EnumerateSSFBCNaive, g, params), oracle)
          << "seed=" << seed << " delta=" << delta;
    }
  }
}

TEST(ThreeAttrClasses, BsfbcMatchesOracle) {
  for (std::uint64_t seed = 70; seed < 85; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 6, 0.65, /*num_attrs=*/3);
    FairBicliqueParams params{1, 1, 1, 0.0};
    auto oracle = Canonicalize(BruteForceBSFBC(g, params));
    EXPECT_EQ(Collect(EnumerateBSFBC, g, params), oracle) << "seed=" << seed;
    EXPECT_EQ(Collect(EnumerateBSFBCPlusPlus, g, params), oracle)
        << "seed=" << seed;
  }
}

TEST(ThreeAttrClasses, ProportionalMatchesOracle) {
  // Exercises the general (non-closed-form) maximal-fair-vector search.
  for (std::uint64_t seed = 90; seed < 105; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.65, /*num_attrs=*/3);
    for (double theta : {0.2, 0.3}) {
      FairBicliqueParams params{1, 1, 2, theta};
      auto oracle = Canonicalize(BruteForceSSFBC(g, params));
      EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
          << "seed=" << seed << " theta=" << theta;
      EXPECT_EQ(Collect(EnumerateSSFBC, g, params), oracle)
          << "seed=" << seed << " theta=" << theta;
    }
  }
}

TEST(MixedAttrCounts, TwoUpperThreeLowerClasses) {
  // Different domain sizes per side (builder supports them
  // independently).
  for (std::uint64_t seed = 110; seed < 120; ++seed) {
    Rng rng(seed);
    BipartiteGraphBuilder builder(6, 6);
    for (VertexId u = 0; u < 6; ++u) {
      for (VertexId v = 0; v < 6; ++v) {
        if (rng.NextBool(0.6)) builder.AddEdge(u, v);
      }
    }
    builder.AssignRandomAttrs(Side::kUpper, 2, rng);
    builder.AssignRandomAttrs(Side::kLower, 3, rng);
    auto built = builder.Build();
    ASSERT_TRUE(built.ok());
    BipartiteGraph g = std::move(built).value();
    FairBicliqueParams params{1, 1, 1, 0.0};
    auto oracle = Canonicalize(BruteForceBSFBC(g, params));
    EXPECT_EQ(Collect(EnumerateBSFBCPlusPlus, g, params), oracle)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fairbc
