// Degenerate-parameter edge cases: alpha = 0 (no upper size constraint
// beyond nonemptiness), beta = 0 (classes may be empty), and the
// paper's hardness reduction (alpha = 0, beta = 0, delta = n degenerates
// SSFBC enumeration to plain maximal biclique enumeration) — all
// validated against the brute-force oracle.

#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::Collect;
using ::fairbc::testing::RandomSmallGraph;

TEST(ZeroParams, AlphaZeroMatchesOracle) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    FairBicliqueParams params{0, 1, 1, 0.0};
    auto oracle = Canonicalize(BruteForceSSFBC(g, params));
    EXPECT_EQ(Collect(EnumerateSSFBC, g, params), oracle) << "seed=" << seed;
    EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
        << "seed=" << seed;
  }
}

TEST(ZeroParams, BetaZeroMatchesOracle) {
  for (std::uint64_t seed = 20; seed < 35; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    for (std::uint32_t delta : {0u, 2u}) {
      FairBicliqueParams params{1, 0, delta, 0.0};
      auto oracle = Canonicalize(BruteForceSSFBC(g, params));
      EXPECT_EQ(Collect(EnumerateSSFBC, g, params), oracle)
          << "seed=" << seed << " delta=" << delta;
      EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
          << "seed=" << seed << " delta=" << delta;
    }
  }
}

TEST(ZeroParams, HardnessReductionToMaximalBicliques) {
  // alpha=0, beta=0, delta=n: the fairness constraints are vacuous, so
  // SSFBCs are exactly the maximal bicliques (paper §II Hardness).
  for (std::uint64_t seed = 40; seed < 55; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    FairBicliqueParams params{0, 0,
                              g.NumLower() + g.NumUpper(), 0.0};
    auto fair = Collect(EnumerateSSFBCPlusPlus, g, params);
    auto mbc = Canonicalize(BruteForceMaximalBicliques(g, 1, 1, 0));
    EXPECT_EQ(fair, mbc) << "seed=" << seed << " " << g.DebugString();
    EXPECT_EQ(Collect(EnumerateSSFBC, g, params), mbc) << "seed=" << seed;
  }
}

TEST(ZeroParams, BiSideZeroAlphaMatchesOracle) {
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 6, 0.55);
    FairBicliqueParams params{0, 1, 1, 0.0};
    auto oracle = Canonicalize(BruteForceBSFBC(g, params));
    EXPECT_EQ(Collect(EnumerateBSFBC, g, params), oracle) << "seed=" << seed;
    EXPECT_EQ(Collect(EnumerateBSFBCPlusPlus, g, params), oracle)
        << "seed=" << seed;
  }
}

TEST(ZeroParams, HugeDeltaEqualsBetaOnlyConstraint) {
  // With delta larger than the graph, fairness reduces to the per-class
  // minimum; cross-check the two engines.
  for (std::uint64_t seed = 80; seed < 90; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5);
    FairBicliqueParams params{1, 1, 100, 0.0};
    auto oracle = Canonicalize(BruteForceSSFBC(g, params));
    EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fairbc
