// Per-query span tracing: recorder/ring mechanics, span-tree
// well-formedness on every engine/model combination, bounded eviction
// under flood, and the Chrome trace-event JSON shape Perfetto loads.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_executor.h"

namespace fairbc {
namespace {

TEST(TraceRecorder, RecordsAndSnapshots) {
  TraceRecorder rec(16);
  rec.Record("a", 10.0, 5.0);
  rec.Record("b", 12.0, 1.0);
  const auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Snapshot orders by start time, enclosing spans first.
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].ts_us, 10.0);
  EXPECT_EQ(spans[0].dur_us, 5.0);
  EXPECT_STREQ(spans[1].name, "b");
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, BoundedCapacityCountsDrops) {
  TraceRecorder rec(4);
  for (int i = 0; i < 10; ++i) rec.Record("s", static_cast<double>(i), 1.0);
  EXPECT_EQ(rec.Snapshot().size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(TraceSpan, RaiiAndMove) {
  TraceRecorder rec(16);
  {
    TraceSpan outer(&rec, "outer");
    TraceSpan moved = std::move(outer);
    TraceSpan inner(&rec, "inner");
    inner.End();
    inner.End();  // idempotent
  }  // moved commits here
  const auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  // Null recorder: every operation is a no-op.
  TraceSpan null_span(nullptr, "x");
  null_span.End();
}

TEST(TraceRing, EvictsOldestUnderFlood) {
  TraceRing ring(8);
  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 100;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        auto rec = std::make_shared<TraceRecorder>(4);
        rec->Record("q", 0.0, 1.0);
        ring.Push(std::move(rec));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.pushed(), kThreads * kPerThread);
  EXPECT_EQ(ring.Snapshot(1000).size(), ring.capacity());
  EXPECT_EQ(ring.Snapshot(3).size(), 3u);
}

TEST(TraceRing, SnapshotIsNewestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) {
    auto rec = std::make_shared<TraceRecorder>(2);
    rec->set_label("t" + std::to_string(i));
    ring.Push(std::move(rec));
  }
  const auto got = ring.Snapshot(4);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0]->label(), "t5");
  EXPECT_EQ(got[3]->label(), "t2");
}

// --- Span-tree well-formedness over the real engines ------------------------

BipartiteGraph TraceTestGraph() {
  AffiliationConfig config;
  config.num_upper = 60;
  config.num_lower = 60;
  config.num_communities = 6;
  config.seed = 29;
  return MakeAffiliation(config);
}

// The naive engine enumerates every upper-side subset (2^|U| nodes), so
// its matrix cell gets a deliberately tiny graph; span structure, not
// enumeration scale, is what the matrix checks.
BipartiteGraph NaiveTraceTestGraph() {
  AffiliationConfig config;
  config.num_upper = 16;
  config.num_lower = 16;
  config.num_communities = 4;
  config.seed = 29;
  return MakeAffiliation(config);
}

/// Asserts the spans form a forest per tid: any two spans on one thread
/// are either disjoint or properly nested (allowing a rounding epsilon —
/// timestamps are microsecond doubles).
void CheckNesting(const std::vector<TraceSpanData>& spans) {
  constexpr double kEps = 1.0;  // one microsecond of clock rounding
  std::map<std::uint32_t, std::vector<TraceSpanData>> by_tid;
  for (const TraceSpanData& s : spans) by_tid[s.tid].push_back(s);
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(),
              [](const TraceSpanData& a, const TraceSpanData& b) {
                if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                return a.dur_us > b.dur_us;
              });
    std::vector<TraceSpanData> stack;
    for (const TraceSpanData& s : list) {
      while (!stack.empty() &&
             s.ts_us >= stack.back().ts_us + stack.back().dur_us - kEps) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        // Overlapping spans on one thread must be properly nested.
        EXPECT_LE(s.ts_us + s.dur_us,
                  stack.back().ts_us + stack.back().dur_us + kEps)
            << s.name << " escapes " << stack.back().name << " on tid "
            << tid;
      }
      stack.push_back(s);
    }
  }
}

bool HasSpan(const std::vector<TraceSpanData>& spans, const char* name) {
  for (const TraceSpanData& s : spans) {
    if (std::string(s.name) == name) return true;
  }
  return false;
}

// Every model x algo x thread-width combination must produce a
// well-formed span tree containing the query/execute/enumerate chain.
TEST(TraceIntegration, SpanTreeWellFormedOnEveryEngine) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", TraceTestGraph()).ok());
  ASSERT_TRUE(catalog.AddGraph("tiny", NaiveTraceTestGraph()).ok());
  for (const FairModel model : {FairModel::kSsfbc, FairModel::kBsfbc}) {
    for (const FairAlgo algo :
         {FairAlgo::kPlusPlus, FairAlgo::kBcem, FairAlgo::kNaive}) {
      for (const unsigned threads : {1u, 2u}) {
        QueryExecutorOptions options;
        options.num_threads = 1;
        options.slow_query_ms = 0.0;  // trace and retain every query
        QueryExecutor executor(catalog, options);
        QueryRequest request;
        request.graph = algo == FairAlgo::kNaive ? "tiny" : "g";
        request.model = model;
        request.algo = algo;
        request.params = {2, 2, 1, 0.0};
        request.options.num_threads = threads;
        request.use_cache = false;
        QueryResult result = executor.Execute(request);
        ASSERT_TRUE(result.status.ok());
        ASSERT_NE(result.trace, nullptr)
            << ToString(model) << "/" << ToString(algo);
        const auto spans = result.trace->Snapshot();
        ASSERT_FALSE(spans.empty());
        EXPECT_TRUE(HasSpan(spans, "query"));
        EXPECT_TRUE(HasSpan(spans, "execute"));
        EXPECT_TRUE(HasSpan(spans, "enumerate"));
        CheckNesting(spans);
        // Phase spans sum to no more than the root span.
        double root_dur = 0.0, child_sum = 0.0;
        for (const TraceSpanData& s : spans) {
          const std::string name = s.name;
          if (name == "query") root_dur = s.dur_us;
          if (name == "admission" || name == "execute" || name == "publish") {
            child_sum += s.dur_us;
          }
        }
        EXPECT_GT(root_dur, 0.0);
        EXPECT_LE(child_sum, root_dur * 1.01 + 10.0);
        // The ring retained it (slow_query_ms = 0).
        EXPECT_GE(executor.traces().pushed(), 1u);
      }
    }
  }
}

TEST(TraceIntegration, CacheHitsAndUntracedRunsCarryNoTrace) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", TraceTestGraph()).ok());
  {
    // Tracing off (default): no recorder at all.
    QueryExecutor executor(catalog, {});
    QueryRequest request;
    request.graph = "g";
    request.params = {2, 2, 1, 0.0};
    QueryResult result = executor.Execute(request);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.trace, nullptr);
    EXPECT_EQ(executor.traces().pushed(), 0u);
  }
  {
    QueryExecutorOptions options;
    options.slow_query_ms = 0.0;
    QueryExecutor executor(catalog, options);
    QueryRequest request;
    request.graph = "g";
    request.params = {2, 2, 1, 0.0};
    QueryResult first = executor.Execute(request);
    ASSERT_TRUE(first.status.ok());
    EXPECT_NE(first.trace, nullptr);
    QueryResult second = executor.Execute(request);
    ASSERT_TRUE(second.status.ok());
    EXPECT_TRUE(second.cache_hit);
    // Cache hits ran no engine: no trace, and the ring kept only the
    // real execution.
    EXPECT_EQ(second.trace, nullptr);
    EXPECT_EQ(executor.traces().pushed(), 1u);
  }
}

TEST(TraceIntegration, SlowThresholdFiltersRetention) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", TraceTestGraph()).ok());
  QueryExecutorOptions options;
  options.slow_query_ms = 1e9;  // nothing is that slow
  QueryExecutor executor(catalog, options);
  QueryRequest request;
  request.graph = "g";
  request.params = {2, 2, 1, 0.0};
  QueryResult result = executor.Execute(request);
  ASSERT_TRUE(result.status.ok());
  // Traced (recorder attached) but not retained (under threshold).
  EXPECT_NE(result.trace, nullptr);
  EXPECT_EQ(executor.traces().pushed(), 0u);
}

TEST(TraceEventsJsonTest, EmitsChromeTraceShape) {
  TraceRecorder rec(8);
  rec.set_label("g ssfbc/pp");
  rec.set_wall_seconds(0.5);
  rec.Record("query", 0.0, 1000.0);
  rec.Record("execute", 10.0, 900.0);
  const std::string json = TraceEventsJson(rec);
  EXPECT_NE(json.find("\"label\":\"g ssfbc/pp\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // Labels with quotes/backslashes must be escaped.
  TraceRecorder hostile(2);
  hostile.set_label("a\"b\\c");
  EXPECT_NE(TraceEventsJson(hostile).find("a\\\"b\\\\c"), std::string::npos);
}

}  // namespace
}  // namespace fairbc
