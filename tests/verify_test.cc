#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/verify.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

TEST(Verify, AcceptsAllEnumeratedSsfbc) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 9, 0.5);
    FairBicliqueParams params{2, 1, 1, 0.0};
    CollectSink sink;
    EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
    EXPECT_TRUE(
        VerifyResultSet(g, sink.results(), params, FairModel::kSsfbc).ok())
        << "seed=" << seed;
  }
}

TEST(Verify, AcceptsAllEnumeratedBsfbc) {
  for (std::uint64_t seed = 30; seed < 45; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.55);
    FairBicliqueParams params{1, 1, 1, 0.0};
    CollectSink sink;
    EnumerateBSFBCPlusPlus(g, params, {}, sink.AsSink());
    EXPECT_TRUE(
        VerifyResultSet(g, sink.results(), params, FairModel::kBsfbc).ok())
        << "seed=" << seed;
  }
}

TEST(Verify, AcceptsProportionalResults) {
  for (std::uint64_t seed = 50; seed < 60; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5);
    FairBicliqueParams params{1, 1, 2, 0.4};
    CollectSink sink;
    EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
    EXPECT_TRUE(
        VerifyResultSet(g, sink.results(), params, FairModel::kSsfbc).ok())
        << "seed=" << seed;
  }
}

TEST(Verify, RejectsNonBiclique) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}}, {0, 1}, {0, 1});
  FairBicliqueParams params{1, 1, 1, 0.0};
  // (u0,u1) x (v0,v1) is missing edge (1,1).
  Biclique bad{{0, 1}, {0, 1}};
  Status st = VerifyFairBiclique(g, bad, params, FairModel::kSsfbc);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a biclique"), std::string::npos);
}

TEST(Verify, RejectsEmptySide) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}}, {0, 1}, {0, 1});
  FairBicliqueParams params{1, 1, 1, 0.0};
  Biclique bad{{}, {0}};
  EXPECT_FALSE(
      VerifyFairBiclique(g, bad, params, FairModel::kSsfbc).ok());
}

TEST(Verify, RejectsOutOfRangeAndDuplicates) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {1, 1}}, {0, 1}, {0, 1});
  FairBicliqueParams params{1, 1, 1, 0.0};
  Biclique oob{{5}, {0}};
  EXPECT_FALSE(VerifyFairBiclique(g, oob, params, FairModel::kSsfbc).ok());
  Biclique dup{{0, 0}, {0}};
  EXPECT_FALSE(VerifyFairBiclique(g, dup, params, FairModel::kSsfbc).ok());
}

TEST(Verify, RejectsNonMaximalSubset) {
  // Complete 2x4 with balanced classes; dropping one vertex from the
  // full fair lower side leaves a fairly-extendable set.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(2, 4, edges, {0, 1}, {0, 1, 0, 1});
  FairBicliqueParams params{1, 1, 1, 0.0};
  Biclique full{{0, 1}, {0, 1, 2, 3}};
  EXPECT_TRUE(VerifyFairBiclique(g, full, params, FairModel::kSsfbc).ok());
  Biclique partial{{0, 1}, {0, 1, 2}};
  Status st = VerifyFairBiclique(g, partial, params, FairModel::kSsfbc);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not maximal"), std::string::npos);
}

TEST(Verify, RejectsShrunkUpperSide) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 2; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(3, 2, edges, {0, 1, 0}, {0, 1});
  FairBicliqueParams params{1, 1, 1, 0.0};
  // The common neighborhood of {v0,v1} is all three uppers.
  Biclique shrunk{{0, 1}, {0, 1}};
  Status st = VerifyFairBiclique(g, shrunk, params, FairModel::kSsfbc);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("common neighborhood"), std::string::npos);
}

TEST(Verify, RejectsUnfairUpperSideForBsfbc) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId v = 0; v < 2; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(2, 2, edges, {0, 0}, {0, 1});
  FairBicliqueParams params{1, 1, 0, 0.0};
  Biclique b{{0, 1}, {0, 1}};
  Status st = VerifyFairBiclique(g, b, params, FairModel::kBsfbc);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("upper side is not a fair set"),
            std::string::npos);
}

TEST(Verify, ResultSetDetectsDuplicates) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId v = 0; v < 2; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(2, 2, edges, {0, 1}, {0, 1});
  FairBicliqueParams params{1, 1, 0, 0.0};
  Biclique b{{0, 1}, {0, 1}};
  Status st = VerifyResultSet(g, {b, b}, params, FairModel::kSsfbc);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("duplicate"), std::string::npos);
}

}  // namespace
}  // namespace fairbc
