// Binary snapshot round-trip and error-path tests (graph/snapshot.h):
// save/load must reproduce byte-identical CSR arrays for every generator
// family, and every corruption mode (bad magic, bad version, truncation,
// flipped payload bytes, trailing garbage) must come back as a Status —
// never a crash.

#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void ExpectSpansEqual(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::vector<T>(a.begin(), a.end()),
            std::vector<T>(b.begin(), b.end()));
}

void ExpectByteIdentical(const BipartiteGraph& a, const BipartiteGraph& b) {
  EXPECT_EQ(a.NumUpper(), b.NumUpper());
  EXPECT_EQ(a.NumLower(), b.NumLower());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (Side side : {Side::kUpper, Side::kLower}) {
    EXPECT_EQ(a.NumAttrs(side), b.NumAttrs(side));
    ExpectSpansEqual(a.Offsets(side), b.Offsets(side));
    ExpectSpansEqual(a.NeighborArray(side), b.NeighborArray(side));
    ExpectSpansEqual(a.AttrArray(side), b.AttrArray(side));
  }
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
}

class SnapshotRoundTrip : public ::testing::TestWithParam<const char*> {
 protected:
  BipartiteGraph MakeFamilyGraph() const {
    const std::string family = GetParam();
    if (family == "uniform") {
      return MakeUniformRandom(400, 500, 3000, 3, 19);
    }
    if (family == "powerlaw") {
      return MakePowerLaw(400, 500, 3000, 2.2, 3, 19);
    }
    AffiliationConfig config;
    config.num_upper = 400;
    config.num_lower = 500;
    config.num_communities = 25;
    config.seed = 19;
    return MakeAffiliation(config);
  }
};

TEST_P(SnapshotRoundTrip, SaveLoadByteIdentical) {
  const BipartiteGraph g = MakeFamilyGraph();
  const std::string path = TempPath(std::string("rt_") + GetParam() + ".snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());

  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectByteIdentical(g, loaded.value());
  EXPECT_TRUE(loaded.value().Validate().ok());
}

TEST_P(SnapshotRoundTrip, MmapViewByteIdenticalToCopyLoad) {
  const BipartiteGraph g = MakeFamilyGraph();
  const std::string path =
      TempPath(std::string("view_") + GetParam() + ".snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());

  // Copies of a view share the mapping and stay byte-identical; the
  // mapping survives the original being destroyed.
  BipartiteGraph copy;
  {
    auto view = ReadSnapshotView(path);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_TRUE(view.value().IsView());
    ExpectByteIdentical(g, view.value());
    EXPECT_TRUE(view.value().Validate().ok());
    copy = view.value();
  }
  EXPECT_TRUE(copy.IsView());
  ExpectByteIdentical(g, copy);
}

TEST_P(SnapshotRoundTrip, RewriteIsDeterministic) {
  const BipartiteGraph g = MakeFamilyGraph();
  const std::string p1 = TempPath("det1.snap");
  const std::string p2 = TempPath("det2.snap");
  ASSERT_TRUE(WriteSnapshot(g, p1).ok());
  ASSERT_TRUE(WriteSnapshot(g, p2).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SnapshotRoundTrip,
                         ::testing::Values("uniform", "powerlaw",
                                           "affiliation"));

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  BipartiteGraph g;
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectByteIdentical(g, loaded.value());
}

TEST(SnapshotTest, FingerprintMatchesHeaderAndDistinguishesContent) {
  const BipartiteGraph a = MakeUniformRandom(100, 100, 500, 2, 1);
  const BipartiteGraph b = MakeUniformRandom(100, 100, 500, 2, 2);
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(b));
  // Same topology, different attribute domain → different fingerprint.
  const BipartiteGraph c = MakeUniformRandom(100, 100, 500, 3, 1);
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(c));
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshot(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = testing::RandomSmallGraph(33, 40, 0.15);
    path_ = TempPath("corrupt.snap");
    ASSERT_TRUE(WriteSnapshot(g_, path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 48u);
  }

  StatusCode LoadCode() {
    auto loaded = ReadSnapshot(path_);
    if (loaded.ok()) return StatusCode::kOk;
    return loaded.status().code();
  }

  /// Same corruption must also be rejected by the mmap loader.
  StatusCode LoadViewCode() {
    auto loaded = ReadSnapshotView(path_);
    if (loaded.ok()) return StatusCode::kOk;
    return loaded.status().code();
  }

  BipartiteGraph g_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, BadMagic) {
  bytes_[0] = 'X';
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, UnsupportedVersion) {
  bytes_[8] = 99;  // version field follows the 8-byte magic.
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TruncatedHeader) {
  WriteFileBytes(path_, bytes_.substr(0, 20));
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TruncatedPayload) {
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() - 7));
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, FlippedPayloadByteFailsChecksum) {
  bytes_[bytes_.size() - 1] ^= 0x40;
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, FlippedMidPayloadByteFailsChecksum) {
  bytes_[48 + (bytes_.size() - 48) / 2] ^= 0x04;
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, FlippedCountFieldFailsChecksum) {
  bytes_[24] ^= 0x01;  // num_upper, first byte of the count block.
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, HugeCountFieldRejectedBeforeAllocation) {
  // Flipping a *high* byte of num_edges claims a multi-petabyte payload;
  // the loader must bound counts by the file size before sizing any
  // vector (a length_error/OOM here would crash a resident server).
  bytes_[39] ^= 0x80;  // num_edges occupies bytes 32..39.
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);

  bytes_[39] ^= 0x80;
  bytes_[27] ^= 0x40;  // and the same for num_upper (bytes 24..27).
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TrailingGarbageRejected) {
  WriteFileBytes(path_, bytes_ + "extra");
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, EmptyFileRejected) {
  WriteFileBytes(path_, "");
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TextFileRejected) {
  WriteFileBytes(path_, "%fairbc 1 2 2 1 1\nE 0 0\n");
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST(SnapshotViewTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshotView(TempPath("view_does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

/// Serializes `g` in the (unpadded) version-1 layout, which WriteSnapshot
/// no longer emits: the count block + six raw arrays, version field 1.
/// The checksum definition is identical across versions.
void WriteV1Snapshot(const BipartiteGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = 1;
  const std::uint32_t reserved = 0;
  const std::uint64_t checksum = GraphFingerprint(g);
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  const std::uint32_t num_upper = g.NumUpper();
  const std::uint32_t num_lower = g.NumLower();
  const std::uint64_t num_edges = g.NumEdges();
  const std::uint16_t num_upper_attrs = g.NumAttrs(Side::kUpper);
  const std::uint16_t num_lower_attrs = g.NumAttrs(Side::kLower);
  const std::uint32_t counts_reserved = 0;
  out.write(reinterpret_cast<const char*>(&num_upper), sizeof(num_upper));
  out.write(reinterpret_cast<const char*>(&num_lower), sizeof(num_lower));
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  out.write(reinterpret_cast<const char*>(&num_upper_attrs),
            sizeof(num_upper_attrs));
  out.write(reinterpret_cast<const char*>(&num_lower_attrs),
            sizeof(num_lower_attrs));
  out.write(reinterpret_cast<const char*>(&counts_reserved),
            sizeof(counts_reserved));
  auto write_span = [&out](const auto span) {
    out.write(reinterpret_cast<const char*>(span.data()),
              static_cast<std::streamsize>(span.size_bytes()));
  };
  write_span(g.Offsets(Side::kUpper));
  write_span(g.NeighborArray(Side::kUpper));
  write_span(g.Offsets(Side::kLower));
  write_span(g.NeighborArray(Side::kLower));
  write_span(g.AttrArray(Side::kUpper));
  write_span(g.AttrArray(Side::kLower));
  ASSERT_TRUE(out.good());
}

/// Version-1 files (no alignment padding) stay loadable: the copying
/// loader reads them directly and the mmap loader falls back to a copy
/// (its u64 sections may start misaligned in a mapping).
TEST(SnapshotViewTest, Version1FilesLoadAndFallBackToCopy) {
  // An odd vertex count makes the attr sections odd-sized, so the v1 and
  // v2 encodings genuinely differ (padding would be nonzero).
  const BipartiteGraph g = MakeUniformRandom(101, 77, 900, 3, 11);
  const std::string path = TempPath("v1.snap");
  WriteV1Snapshot(g, path);

  auto copied = ReadSnapshot(path);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  ExpectByteIdentical(g, copied.value());

  auto view = ReadSnapshotView(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value().IsView());  // fallback = owned copy.
  ExpectByteIdentical(g, view.value());
}

}  // namespace
}  // namespace fairbc
