// Binary snapshot round-trip and error-path tests (graph/snapshot.h):
// save/load must reproduce byte-identical CSR arrays for every generator
// family, and every corruption mode (bad magic, bad version, truncation,
// flipped payload bytes, trailing garbage) must come back as a Status —
// never a crash.

#include "graph/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void ExpectSpansEqual(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::vector<T>(a.begin(), a.end()),
            std::vector<T>(b.begin(), b.end()));
}

void ExpectByteIdentical(const BipartiteGraph& a, const BipartiteGraph& b) {
  EXPECT_EQ(a.NumUpper(), b.NumUpper());
  EXPECT_EQ(a.NumLower(), b.NumLower());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (Side side : {Side::kUpper, Side::kLower}) {
    EXPECT_EQ(a.NumAttrs(side), b.NumAttrs(side));
    ExpectSpansEqual(a.Offsets(side), b.Offsets(side));
    ExpectSpansEqual(a.NeighborArray(side), b.NeighborArray(side));
    ExpectSpansEqual(a.AttrArray(side), b.AttrArray(side));
  }
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
}

class SnapshotRoundTrip : public ::testing::TestWithParam<const char*> {
 protected:
  BipartiteGraph MakeFamilyGraph() const {
    const std::string family = GetParam();
    if (family == "uniform") {
      return MakeUniformRandom(400, 500, 3000, 3, 19);
    }
    if (family == "powerlaw") {
      return MakePowerLaw(400, 500, 3000, 2.2, 3, 19);
    }
    AffiliationConfig config;
    config.num_upper = 400;
    config.num_lower = 500;
    config.num_communities = 25;
    config.seed = 19;
    return MakeAffiliation(config);
  }
};

TEST_P(SnapshotRoundTrip, SaveLoadByteIdentical) {
  const BipartiteGraph g = MakeFamilyGraph();
  const std::string path = TempPath(std::string("rt_") + GetParam() + ".snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());

  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectByteIdentical(g, loaded.value());
  EXPECT_TRUE(loaded.value().Validate().ok());
}

TEST_P(SnapshotRoundTrip, MmapViewByteIdenticalToCopyLoad) {
  const BipartiteGraph g = MakeFamilyGraph();
  const std::string path =
      TempPath(std::string("view_") + GetParam() + ".snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());

  // Copies of a view share the mapping and stay byte-identical; the
  // mapping survives the original being destroyed.
  BipartiteGraph copy;
  {
    auto view = ReadSnapshotView(path);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_TRUE(view.value().IsView());
    ExpectByteIdentical(g, view.value());
    EXPECT_TRUE(view.value().Validate().ok());
    copy = view.value();
  }
  EXPECT_TRUE(copy.IsView());
  ExpectByteIdentical(g, copy);
}

TEST_P(SnapshotRoundTrip, RewriteIsDeterministic) {
  const BipartiteGraph g = MakeFamilyGraph();
  const std::string p1 = TempPath("det1.snap");
  const std::string p2 = TempPath("det2.snap");
  ASSERT_TRUE(WriteSnapshot(g, p1).ok());
  ASSERT_TRUE(WriteSnapshot(g, p2).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SnapshotRoundTrip,
                         ::testing::Values("uniform", "powerlaw",
                                           "affiliation"));

TEST(SnapshotTest, EmptyGraphRoundTrips) {
  BipartiteGraph g;
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectByteIdentical(g, loaded.value());
}

TEST(SnapshotTest, FingerprintMatchesHeaderAndDistinguishesContent) {
  const BipartiteGraph a = MakeUniformRandom(100, 100, 500, 2, 1);
  const BipartiteGraph b = MakeUniformRandom(100, 100, 500, 2, 2);
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(b));
  // Same topology, different attribute domain → different fingerprint.
  const BipartiteGraph c = MakeUniformRandom(100, 100, 500, 3, 1);
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(c));
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshot(TempPath("does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = testing::RandomSmallGraph(33, 40, 0.15);
    path_ = TempPath("corrupt.snap");
    ASSERT_TRUE(WriteSnapshot(g_, path_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 48u);
  }

  StatusCode LoadCode() {
    auto loaded = ReadSnapshot(path_);
    if (loaded.ok()) return StatusCode::kOk;
    return loaded.status().code();
  }

  /// Same corruption must also be rejected by the mmap loader.
  StatusCode LoadViewCode() {
    auto loaded = ReadSnapshotView(path_);
    if (loaded.ok()) return StatusCode::kOk;
    return loaded.status().code();
  }

  BipartiteGraph g_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotCorruption, BadMagic) {
  bytes_[0] = 'X';
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, UnsupportedVersion) {
  bytes_[8] = 99;  // version field follows the 8-byte magic.
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TruncatedHeader) {
  WriteFileBytes(path_, bytes_.substr(0, 20));
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TruncatedPayload) {
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() - 7));
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, FlippedPayloadByteFailsChecksum) {
  bytes_[bytes_.size() - 1] ^= 0x40;
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, FlippedMidPayloadByteFailsChecksum) {
  bytes_[48 + (bytes_.size() - 48) / 2] ^= 0x04;
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, FlippedCountFieldFailsChecksum) {
  bytes_[24] ^= 0x01;  // num_upper, first byte of the count block.
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, HugeCountFieldRejectedBeforeAllocation) {
  // Flipping a *high* byte of num_edges claims a multi-petabyte payload;
  // the loader must bound counts by the file size before sizing any
  // vector (a length_error/OOM here would crash a resident server).
  bytes_[39] ^= 0x80;  // num_edges occupies bytes 32..39.
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);

  bytes_[39] ^= 0x80;
  bytes_[27] ^= 0x40;  // and the same for num_upper (bytes 24..27).
  WriteFileBytes(path_, bytes_);
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TrailingGarbageRejected) {
  WriteFileBytes(path_, bytes_ + "extra");
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, EmptyFileRejected) {
  WriteFileBytes(path_, "");
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST_F(SnapshotCorruption, TextFileRejected) {
  WriteFileBytes(path_, "%fairbc 1 2 2 1 1\nE 0 0\n");
  EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
  EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
}

TEST(SnapshotViewTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshotView(TempPath("view_does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

/// Serializes `g` in the (unpadded) version-1 layout, which WriteSnapshot
/// no longer emits: the count block + six raw arrays, version field 1.
/// The checksum definition is identical across versions.
void WriteV1Snapshot(const BipartiteGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  const std::uint32_t version = 1;
  const std::uint32_t reserved = 0;
  const std::uint64_t checksum = GraphFingerprint(g);
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  const std::uint32_t num_upper = g.NumUpper();
  const std::uint32_t num_lower = g.NumLower();
  const std::uint64_t num_edges = g.NumEdges();
  const std::uint16_t num_upper_attrs = g.NumAttrs(Side::kUpper);
  const std::uint16_t num_lower_attrs = g.NumAttrs(Side::kLower);
  const std::uint32_t counts_reserved = 0;
  out.write(reinterpret_cast<const char*>(&num_upper), sizeof(num_upper));
  out.write(reinterpret_cast<const char*>(&num_lower), sizeof(num_lower));
  out.write(reinterpret_cast<const char*>(&num_edges), sizeof(num_edges));
  out.write(reinterpret_cast<const char*>(&num_upper_attrs),
            sizeof(num_upper_attrs));
  out.write(reinterpret_cast<const char*>(&num_lower_attrs),
            sizeof(num_lower_attrs));
  out.write(reinterpret_cast<const char*>(&counts_reserved),
            sizeof(counts_reserved));
  auto write_span = [&out](const auto span) {
    out.write(reinterpret_cast<const char*>(span.data()),
              static_cast<std::streamsize>(span.size_bytes()));
  };
  write_span(g.Offsets(Side::kUpper));
  write_span(g.NeighborArray(Side::kUpper));
  write_span(g.Offsets(Side::kLower));
  write_span(g.NeighborArray(Side::kLower));
  write_span(g.AttrArray(Side::kUpper));
  write_span(g.AttrArray(Side::kLower));
  ASSERT_TRUE(out.good());
}

/// Version-1 files (no alignment padding) stay loadable: the copying
/// loader reads them directly and the mmap loader falls back to a copy
/// (its u64 sections may start misaligned in a mapping).
TEST(SnapshotViewTest, Version1FilesLoadAndFallBackToCopy) {
  // An odd vertex count makes the attr sections odd-sized, so the v1 and
  // v2 encodings genuinely differ (padding would be nonzero).
  const BipartiteGraph g = MakeUniformRandom(101, 77, 900, 3, 11);
  const std::string path = TempPath("v1.snap");
  WriteV1Snapshot(g, path);

  auto copied = ReadSnapshot(path);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  ExpectByteIdentical(g, copied.value());

  auto view = ReadSnapshotView(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value().IsView());  // fallback = owned copy.
  ExpectByteIdentical(g, view.value());
}

/// Corruption suite for the v3 (compressed) format. The v3 layout is
///   [0,48)   common header (magic, version, content checksum, counts)
///   [48,112) v3 header: index_checksum u64 @48, block_edges u32 @56,
///            num_upper_blocks u32 @60, num_lower_blocks u32 @64,
///            reserved @68, then five u64 section sizes @72..112
///   [112, +24*(nub+nlb))  block index entries
///   four eager varint sections (offsets x2, attrs x2)
///   blocks region (last blocks_bytes bytes of the file)
/// Every mutation must come back as a Status from BOTH eager loaders and
/// from the lazy SnapshotReader — never a throw, crash or huge allocation.
class SnapshotV3Corruption : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = testing::RandomSmallGraph(33, 40, 0.15);
    path_ = TempPath("corrupt_v3.snap");
    SnapshotWriteOptions options;
    options.version = kSnapshotVersionCompressed;
    options.block_edges = 16;  // several blocks per direction.
    ASSERT_TRUE(WriteSnapshot(g_, path_, options).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 112u);
    ASSERT_GE(NumBlocks(), 4u) << "graph too small to exercise blocks";
  }

  std::uint32_t U32At(std::size_t off) const {
    std::uint32_t v = 0;
    std::memcpy(&v, bytes_.data() + off, sizeof(v));
    return v;
  }
  std::uint64_t U64At(std::size_t off) const {
    std::uint64_t v = 0;
    std::memcpy(&v, bytes_.data() + off, sizeof(v));
    return v;
  }

  std::uint32_t NumBlocks() const { return U32At(60) + U32At(64); }
  std::size_t IndexEnd() const { return 112 + 24u * NumBlocks(); }
  std::size_t BlocksStart() const {
    return bytes_.size() - static_cast<std::size_t>(U64At(104));
  }

  /// Every section boundary, in file order (excluding offset 0 and the
  /// full file size).
  std::vector<std::size_t> SectionBoundaries() const {
    std::vector<std::size_t> b = {48, 112, IndexEnd()};
    std::size_t pos = IndexEnd();
    for (std::size_t size_field : {72u, 80u, 88u, 96u}) {
      pos += static_cast<std::size_t>(U64At(size_field));
      b.push_back(pos);
    }
    return b;  // pos + blocks_bytes == file size.
  }

  /// Recomputes index_checksum after a deliberate header/index edit, so
  /// tests can reach the guards *behind* the checksum (a forged file).
  void ReforgeIndexChecksum() {
    std::uint64_t state = Fnv1a64(bytes_.data() + 24, 24);
    state = Fnv1a64(bytes_.data() + 56, BlocksStart() - 56, state);
    std::memcpy(bytes_.data() + 48, &state, sizeof(state));
  }

  StatusCode LoadCode() {
    auto loaded = ReadSnapshot(path_);
    if (loaded.ok()) return StatusCode::kOk;
    return loaded.status().code();
  }
  StatusCode LoadViewCode() {
    auto loaded = ReadSnapshotView(path_);
    if (loaded.ok()) return StatusCode::kOk;
    return loaded.status().code();
  }
  /// Lazy path: Open + full-range decode of both directions.
  StatusCode LazyCode() {
    auto opened = SnapshotReader::Open(path_);
    if (!opened.ok()) return opened.status().code();
    std::vector<VertexId> out;
    for (Side side : {Side::kUpper, Side::kLower}) {
      Status s = opened.value().DecodeEdgeRange(
          side, 0, opened.value().NumEdges(), &out);
      if (!s.ok()) return s.code();
    }
    return StatusCode::kOk;
  }
  void ExpectAllLoadersReject(StatusCode code = StatusCode::kCorruptInput) {
    EXPECT_EQ(LoadCode(), code);
    EXPECT_EQ(LoadViewCode(), code);
    EXPECT_EQ(LazyCode(), code);
  }

  BipartiteGraph g_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotV3Corruption, IntactFileLoadsEverywhere) {
  EXPECT_EQ(LoadCode(), StatusCode::kOk);
  EXPECT_EQ(LoadViewCode(), StatusCode::kOk);
  EXPECT_EQ(LazyCode(), StatusCode::kOk);
}

TEST_F(SnapshotV3Corruption, TruncationAtEverySectionBoundary) {
  for (std::size_t boundary : SectionBoundaries()) {
    for (std::size_t cut : {boundary, boundary - 1}) {
      WriteFileBytes(path_, bytes_.substr(0, cut));
      ExpectAllLoadersReject();
    }
  }
  // One byte short of the full file (inside the blocks region).
  WriteFileBytes(path_, bytes_.substr(0, bytes_.size() - 1));
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, TrailingGarbageRejected) {
  WriteFileBytes(path_, bytes_ + "extra");
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, BitFlipInBlockIndexFailsIndexChecksum) {
  // One flip per index entry field class: offset, bytes, checksum, codec.
  for (std::size_t off : {std::size_t{112}, std::size_t{112 + 8},
                          std::size_t{112 + 12}, std::size_t{112 + 16},
                          IndexEnd() - 1}) {
    std::string mutated = bytes_;
    mutated[off] ^= 0x10;
    WriteFileBytes(path_, mutated);
    ExpectAllLoadersReject();
  }
}

TEST_F(SnapshotV3Corruption, BitFlipInEagerSectionsFailsIndexChecksum) {
  const std::size_t mid = IndexEnd() + (BlocksStart() - IndexEnd()) / 2;
  bytes_[mid] ^= 0x01;
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, BitFlipInCompressedBlockFailsBlockChecksum) {
  // Metadata stays intact, so the lazy Open succeeds — the corruption
  // must then be caught by the per-block checksum on decode, in both the
  // eager loaders and the lazy range decode.
  for (std::size_t off : {BlocksStart(), bytes_.size() - 1,
                          BlocksStart() + (bytes_.size() - BlocksStart()) / 2}) {
    std::string mutated = bytes_;
    mutated[off] ^= 0x20;
    WriteFileBytes(path_, mutated);
    EXPECT_EQ(LoadCode(), StatusCode::kCorruptInput);
    EXPECT_EQ(LoadViewCode(), StatusCode::kCorruptInput);
    auto opened = SnapshotReader::Open(path_);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ(LazyCode(), StatusCode::kCorruptInput);
  }
}

TEST_F(SnapshotV3Corruption, HugeCountsRejectedBeforeAllocation) {
  // A flipped high count byte claims a petabyte payload; the size and
  // index-checksum checks must fire before any count-derived allocation
  // (an OOM or length_error here would take down a resident server).
  bytes_[39] ^= 0x80;  // num_edges high byte (bytes 32..39).
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();

  bytes_[39] ^= 0x80;
  bytes_[27] ^= 0x40;  // num_upper high byte (bytes 24..27).
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, ForgedHugeCountsStillRejected) {
  // Forge the index checksum after inflating num_edges: the checksum
  // passes, so the structural guards behind it (section-size consistency
  // against the real file length) must reject the file on their own.
  bytes_[39] ^= 0x80;
  ReforgeIndexChecksum();
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, ForgedZeroBlockEdgesRejected) {
  // block_edges = 0 with a matching forged checksum must hit the
  // explicit divide-by-zero guard, not a SIGFPE.
  std::memset(bytes_.data() + 56, 0, 4);
  ReforgeIndexChecksum();
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, ForgedBlockCountMismatchRejected) {
  // Inflate num_upper_blocks (with a forged checksum): the claimed index
  // no longer matches ceil(num_edges / block_edges) and must be
  // rejected before the index is walked.
  bytes_[60] = static_cast<char>(bytes_[60] + 1);
  ReforgeIndexChecksum();
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();
}

TEST_F(SnapshotV3Corruption, ForgedIndexEntryGeometryRejected) {
  // Grow the first block's `bytes` field and forge the checksum: entries
  // no longer tile the blocks region exactly and must be rejected at
  // Open, before any entry-relative pointer is formed.
  std::uint32_t first_bytes = U32At(112 + 8);
  first_bytes += 1;
  std::memcpy(bytes_.data() + 112 + 8, &first_bytes, sizeof(first_bytes));
  ReforgeIndexChecksum();
  WriteFileBytes(path_, bytes_);
  ExpectAllLoadersReject();
}

}  // namespace
}  // namespace fairbc
