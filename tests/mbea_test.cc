#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/mbea.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

std::vector<Biclique> RunMbea(const BipartiteGraph& g, const MbeaConfig& cfg) {
  std::vector<Biclique> out;
  EnumerateMaximalBicliques(g, cfg,
                            [&](const std::vector<VertexId>& u,
                                const std::vector<VertexId>& v) {
                              out.push_back(Biclique{u, v});
                              return true;
                            });
  return Canonicalize(std::move(out));
}

TEST(Mbea, CompleteBipartiteGraphHasOneMaximalBiclique) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(3, 4, edges, {0, 1, 0}, {0, 1, 0, 1});
  auto result = RunMbea(g, MbeaConfig{});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].upper, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(result[0].lower, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Mbea, TwoDisjointBicliques) {
  std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1},   // block A
      {2, 2}, {2, 3}, {3, 2}, {3, 3}};  // block B
  BipartiteGraph g = MakeGraph(4, 4, edges, {0, 1, 0, 1}, {0, 1, 0, 1});
  auto result = RunMbea(g, MbeaConfig{});
  ASSERT_EQ(result.size(), 2u);
}

TEST(Mbea, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.45);
    for (std::uint32_t min_upper : {1u, 2u}) {
      for (std::uint32_t min_total : {1u, 3u}) {
        for (std::uint32_t min_attr : {0u, 1u}) {
          MbeaConfig cfg;
          cfg.min_upper = min_upper;
          cfg.min_lower_total = min_total;
          cfg.min_lower_per_attr = min_attr;
          auto got = RunMbea(g, cfg);
          auto want = Canonicalize(
              BruteForceMaximalBicliques(g, min_upper, min_total, min_attr));
          EXPECT_EQ(got, want)
              << "seed=" << seed << " mu=" << min_upper << " mt=" << min_total
              << " ma=" << min_attr << " " << g.DebugString();
        }
      }
    }
  }
}

TEST(Mbea, BothOrderingsGiveSameSet) {
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.35);
    MbeaConfig id_cfg, deg_cfg;
    id_cfg.ordering = VertexOrdering::kId;
    deg_cfg.ordering = VertexOrdering::kDegreeDesc;
    EXPECT_EQ(RunMbea(g, id_cfg), RunMbea(g, deg_cfg)) << "seed=" << seed;
  }
}

TEST(Mbea, NoDuplicatesEmitted) {
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.5);
    std::vector<Biclique> raw;
    EnumerateMaximalBicliques(g, MbeaConfig{},
                              [&](const std::vector<VertexId>& u,
                                  const std::vector<VertexId>& v) {
                                raw.push_back(Biclique{u, v});
                                return true;
                              });
    auto canon = Canonicalize(raw);
    EXPECT_EQ(canon.size(), raw.size()) << "duplicate emission, seed=" << seed;
  }
}

TEST(Mbea, SinkAbortStopsEnumeration) {
  BipartiteGraph g = RandomSmallGraph(5, 10, 0.5);
  std::uint64_t calls = 0;
  MbeaStats stats = EnumerateMaximalBicliques(
      g, MbeaConfig{},
      [&](const std::vector<VertexId>&, const std::vector<VertexId>&) {
        ++calls;
        return false;
      });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(stats.emitted, 1u);
}

TEST(Mbea, NodeBudgetStopsEarly) {
  BipartiteGraph g = RandomSmallGraph(6, 14, 0.5);
  MbeaConfig cfg;
  cfg.node_budget = 3;
  MbeaStats stats = EnumerateMaximalBicliques(
      g, cfg,
      [](const std::vector<VertexId>&, const std::vector<VertexId>&) {
        return true;
      });
  EXPECT_TRUE(stats.budget_exhausted);
  EXPECT_LE(stats.search_nodes, 4u);
}

TEST(Mbea, EmptyGraphEmitsNothing) {
  BipartiteGraph g;
  MbeaStats stats = EnumerateMaximalBicliques(
      g, MbeaConfig{},
      [](const std::vector<VertexId>&, const std::vector<VertexId>&) {
        return true;
      });
  EXPECT_EQ(stats.emitted, 0u);
}

}  // namespace
}  // namespace fairbc
