#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/max_search.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::RandomSmallGraph;

TEST(ObjectiveValue, BothObjectives) {
  Biclique b{{1, 2, 3}, {4, 5}};
  EXPECT_EQ(ObjectiveValue(b, BicliqueObjective::kEdges), 6u);
  EXPECT_EQ(ObjectiveValue(b, BicliqueObjective::kVertices), 5u);
}

TEST(TopKSSFBC, MatchesBruteForceMaximum) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5);
    FairBicliqueParams params{1, 1, 1, 0.0};
    for (auto objective :
         {BicliqueObjective::kEdges, BicliqueObjective::kVertices}) {
      MaxSearchResult result = TopKSSFBC(g, params, {}, 1, objective);
      auto oracle = BruteForceSSFBC(g, params);
      if (oracle.empty()) {
        EXPECT_TRUE(result.best.empty()) << "seed=" << seed;
        continue;
      }
      std::uint64_t best = 0;
      for (const auto& b : oracle) {
        best = std::max(best, ObjectiveValue(b, objective));
      }
      ASSERT_EQ(result.best.size(), 1u) << "seed=" << seed;
      EXPECT_EQ(ObjectiveValue(result.best[0], objective), best)
          << "seed=" << seed;
    }
  }
}

TEST(TopKSSFBC, ReturnsSortedTopK) {
  BipartiteGraph g = RandomSmallGraph(33, 10, 0.5);
  FairBicliqueParams params{1, 1, 2, 0.0};
  MaxSearchResult result =
      TopKSSFBC(g, params, {}, 5, BicliqueObjective::kEdges);
  ASSERT_LE(result.best.size(), 5u);
  for (std::size_t i = 1; i < result.best.size(); ++i) {
    EXPECT_GE(ObjectiveValue(result.best[i - 1], BicliqueObjective::kEdges),
              ObjectiveValue(result.best[i], BicliqueObjective::kEdges));
  }
}

TEST(TopKSSFBC, KLargerThanResultSet) {
  BipartiteGraph g = RandomSmallGraph(7, 6, 0.5);
  FairBicliqueParams params{1, 1, 1, 0.0};
  MaxSearchResult all = TopKSSFBC(g, params, {}, 1000,
                                  BicliqueObjective::kVertices);
  EXPECT_EQ(all.best.size(), all.stats.num_results);
}

TEST(TopKSSFBC, DeterministicAcrossOrderings) {
  BipartiteGraph g = RandomSmallGraph(44, 10, 0.45);
  FairBicliqueParams params{1, 1, 1, 0.0};
  EnumOptions id_ord, deg_ord;
  id_ord.ordering = VertexOrdering::kId;
  deg_ord.ordering = VertexOrdering::kDegreeDesc;
  auto a = TopKSSFBC(g, params, id_ord, 3, BicliqueObjective::kEdges);
  auto b = TopKSSFBC(g, params, deg_ord, 3, BicliqueObjective::kEdges);
  EXPECT_EQ(a.best, b.best);
}

TEST(TopKBSFBC, MatchesBruteForceMaximum) {
  for (std::uint64_t seed = 60; seed < 72; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 6, 0.6);
    FairBicliqueParams params{1, 1, 1, 0.0};
    MaxSearchResult result =
        TopKBSFBC(g, params, {}, 1, BicliqueObjective::kEdges);
    auto oracle = BruteForceBSFBC(g, params);
    if (oracle.empty()) {
      EXPECT_TRUE(result.best.empty()) << "seed=" << seed;
      continue;
    }
    std::uint64_t best = 0;
    for (const auto& b : oracle) {
      best = std::max(best, ObjectiveValue(b, BicliqueObjective::kEdges));
    }
    ASSERT_FALSE(result.best.empty());
    EXPECT_EQ(ObjectiveValue(result.best[0], BicliqueObjective::kEdges), best)
        << "seed=" << seed;
  }
}

TEST(TopKSSFBC, ZeroKTreatedAsOne) {
  BipartiteGraph g = RandomSmallGraph(9, 6, 0.6);
  FairBicliqueParams params{1, 1, 1, 0.0};
  MaxSearchResult result =
      TopKSSFBC(g, params, {}, 0, BicliqueObjective::kEdges);
  EXPECT_LE(result.best.size(), 1u);
}

}  // namespace
}  // namespace fairbc
