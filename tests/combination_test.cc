#include <gtest/gtest.h>

#include <set>

#include "fairness/combination.h"
#include "fairness/fair_set.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;

BipartiteGraph AttrOnlyGraph(const std::vector<AttrId>& lower_attrs,
                             AttrId num_attrs = 2) {
  // Graph whose lower side carries the attributes; edges irrelevant here.
  std::vector<AttrId> upper{0};
  return MakeGraph(1, static_cast<VertexId>(lower_attrs.size()), {{0, 0}},
                   upper, lower_attrs, 2, num_attrs);
}

TEST(AttrSizes, CountsPerClass) {
  BipartiteGraph g = AttrOnlyGraph({0, 1, 0, 1, 1});
  std::vector<VertexId> all{0, 1, 2, 3, 4};
  SizeVector sizes = AttrSizes(g, Side::kLower, all);
  EXPECT_EQ(sizes, (SizeVector{2, 3}));
}

TEST(IsFairSet, RespectsSpec) {
  BipartiteGraph g = AttrOnlyGraph({0, 1, 0, 1, 1});
  FairnessSpec spec{2, 1, 0.0};
  std::vector<VertexId> all{0, 1, 2, 3, 4};   // (2,3)
  std::vector<VertexId> some{0, 1, 3, 4};     // (1,3)
  EXPECT_TRUE(IsFairSet(g, Side::kLower, all, spec));
  EXPECT_FALSE(IsFairSet(g, Side::kLower, some, spec));
}

TEST(IsMaximalFairSubset, SizeVectorCharacterization) {
  BipartiteGraph g = AttrOnlyGraph({0, 0, 0, 1, 1});
  FairnessSpec spec{1, 1, 0.0};
  std::vector<VertexId> ground{0, 1, 2, 3, 4};  // counts (3,2) -> t*=(3,2)
  std::vector<VertexId> full{0, 1, 2, 3, 4};
  std::vector<VertexId> partial{0, 1, 3, 4};  // (2,2)
  EXPECT_TRUE(IsMaximalFairSubset(g, Side::kLower, full, ground, spec));
  EXPECT_FALSE(IsMaximalFairSubset(g, Side::kLower, partial, ground, spec));
}

TEST(EnumerateMaximalFairSubsets, CountsMatchBinomials) {
  // counts (3,2), k=1, delta=0 -> t* = (2,2) -> C(3,2)*C(2,2) = 3 subsets.
  BipartiteGraph g = AttrOnlyGraph({0, 0, 0, 1, 1});
  FairnessSpec spec{1, 0, 0.0};
  std::vector<VertexId> ground{0, 1, 2, 3, 4};
  std::set<std::vector<VertexId>> seen;
  std::uint64_t n = EnumerateMaximalFairSubsets(
      g, Side::kLower, ground, spec, [&](std::span<const VertexId> s) {
        seen.insert(std::vector<VertexId>(s.begin(), s.end()));
        return true;
      });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(CountMaximalFairSubsetsOf(g, Side::kLower, ground, spec), 3u);
  // Every emitted subset contains both lower-class vertices 3,4 and two
  // of {0,1,2}.
  for (const auto& s : seen) {
    ASSERT_EQ(s.size(), 4u);
    EXPECT_TRUE(std::find(s.begin(), s.end(), 3u) != s.end());
    EXPECT_TRUE(std::find(s.begin(), s.end(), 4u) != s.end());
  }
}

TEST(EnumerateMaximalFairSubsets, EmptyWhenInfeasible) {
  BipartiteGraph g = AttrOnlyGraph({0, 0, 0});  // class 1 empty
  FairnessSpec spec{1, 0, 0.0};
  std::vector<VertexId> ground{0, 1, 2};
  std::uint64_t n = EnumerateMaximalFairSubsets(
      g, Side::kLower, ground, spec,
      [](std::span<const VertexId>) { return true; });
  EXPECT_EQ(n, 0u);
}

TEST(EnumerateMaximalFairSubsets, SinkCanAbort) {
  // counts (3,2), delta 0 -> t* = (2,2) -> 3 subsets; abort after two.
  BipartiteGraph g = AttrOnlyGraph({0, 0, 0, 1, 1});
  FairnessSpec spec{1, 0, 0.0};
  std::vector<VertexId> ground{0, 1, 2, 3, 4};
  std::uint64_t calls = 0;
  EnumerateMaximalFairSubsets(g, Side::kLower, ground, spec,
                              [&](std::span<const VertexId>) {
                                ++calls;
                                return calls < 2;
                              });
  EXPECT_EQ(calls, 2u);
}

TEST(EnumerateMaximalFairSubsets, ProportionalMatchesSpec) {
  // counts (6,2), k=1, delta=4, theta=0.4: ratio cap floor(2*1.5)=3,
  // t* = (3, 2) -> C(6,3)*C(2,2) = 20 subsets, each of size 5 with
  // class shares (0.6, 0.4).
  BipartiteGraph g = AttrOnlyGraph({0, 0, 0, 0, 0, 0, 1, 1});
  FairnessSpec spec{1, 4, 0.4};
  std::vector<VertexId> ground{0, 1, 2, 3, 4, 5, 6, 7};
  std::uint64_t n = EnumerateMaximalFairSubsets(
      g, Side::kLower, ground, spec, [&](std::span<const VertexId> s) {
        EXPECT_EQ(s.size(), 5u);
        return true;
      });
  EXPECT_EQ(n, 20u);
}

TEST(EnumerateMaximalFairSubsets, SubsetOfGroundOnly) {
  BipartiteGraph g = AttrOnlyGraph({0, 1, 0, 1, 0, 1});
  FairnessSpec spec{1, 0, 0.0};
  std::vector<VertexId> ground{2, 3, 4, 5};  // exclude 0,1
  EnumerateMaximalFairSubsets(g, Side::kLower, ground, spec,
                              [&](std::span<const VertexId> s) {
                                for (VertexId v : s) EXPECT_GE(v, 2u);
                                return true;
                              });
}

}  // namespace
}  // namespace fairbc
