#include "test_util.h"

#include <algorithm>

#include "common/random.h"
#include "common/status.h"
#include "graph/builder.h"

namespace fairbc::testing {

BipartiteGraph MakeGraph(VertexId num_upper, VertexId num_lower,
                         const std::vector<std::pair<VertexId, VertexId>>& edges,
                         const std::vector<AttrId>& upper_attrs,
                         const std::vector<AttrId>& lower_attrs,
                         AttrId num_upper_attrs, AttrId num_lower_attrs) {
  BipartiteGraphBuilder builder(num_upper, num_lower);
  builder.SetNumAttrs(Side::kUpper, num_upper_attrs);
  builder.SetNumAttrs(Side::kLower, num_lower_attrs);
  builder.SetAttrs(Side::kUpper, upper_attrs);
  builder.SetAttrs(Side::kLower, lower_attrs);
  for (auto [u, v] : edges) builder.AddEdge(u, v);
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

BipartiteGraph RandomSmallGraph(std::uint64_t seed, VertexId max_side,
                                double density, AttrId num_attrs) {
  Rng rng(seed);
  auto nu = static_cast<VertexId>(rng.NextInt(2, max_side));
  auto nv = static_cast<VertexId>(rng.NextInt(2, max_side));
  BipartiteGraphBuilder builder(nu, nv);
  builder.SetNumAttrs(Side::kUpper, num_attrs);
  builder.SetNumAttrs(Side::kLower, num_attrs);
  for (VertexId u = 0; u < nu; ++u) {
    for (VertexId v = 0; v < nv; ++v) {
      if (rng.NextBool(density)) builder.AddEdge(u, v);
    }
  }
  builder.AssignRandomAttrs(Side::kUpper, num_attrs, rng);
  builder.AssignRandomAttrs(Side::kLower, num_attrs, rng);
  auto result = builder.Build();
  FAIRBC_CHECK(result.ok());
  return std::move(result).value();
}

BipartiteGraph PaperExampleGraph() {
  // Hand-built graph in the spirit of the paper's Fig. 1(a): 5 upper
  // vertices (squares), 9 lower vertices (circles), two attribute values
  // per side, and a planted biclique {u2, u3} x {v1, v3, v5, v8} that is
  // single-side fair for alpha=1, beta=2, delta=1.
  std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 0}, {0, 1}, {0, 2}, {1, 2}, {1, 3}, {1, 4},
      {2, 1}, {2, 3}, {2, 5}, {2, 8}, {2, 6},
      {3, 1}, {3, 3}, {3, 5}, {3, 8}, {3, 0},
      {4, 5}, {4, 6}, {4, 7}, {4, 8},
  };
  return MakeGraph(5, 9, edges,
                   /*upper_attrs=*/{0, 1, 0, 1, 0},
                   /*lower_attrs=*/{0, 0, 1, 1, 0, 0, 1, 0, 1});
}

std::vector<Biclique> Canonicalize(std::vector<Biclique> bicliques) {
  for (auto& b : bicliques) {
    std::sort(b.upper.begin(), b.upper.end());
    std::sort(b.lower.begin(), b.lower.end());
  }
  std::sort(bicliques.begin(), bicliques.end());
  return bicliques;
}

}  // namespace fairbc::testing
