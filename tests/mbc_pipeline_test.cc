// Oracle test for the maximal-biclique pipeline entry point used by the
// Fig. 6 count comparisons (EnumerateMaximalBicliquesPruned).

#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::RandomSmallGraph;

TEST(MbcPipeline, MatchesBruteForceAcrossThresholds) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5);
    for (std::uint32_t min_u : {1u, 2u, 3u}) {
      for (std::uint32_t min_v : {1u, 2u, 4u}) {
        CollectSink sink;
        EnumerateMaximalBicliquesPruned(g, min_u, min_v, {}, sink.AsSink());
        auto got = Canonicalize(sink.results());
        auto want =
            Canonicalize(BruteForceMaximalBicliques(g, min_u, min_v, 0));
        EXPECT_EQ(got, want) << "seed=" << seed << " mu=" << min_u
                             << " mv=" << min_v << " " << g.DebugString();
      }
    }
  }
}

TEST(MbcPipeline, CountsAgreeWithPaperProtocolThresholds) {
  // The Fig. 6 protocol: |L| >= alpha, |R| >= 2*beta. Sanity: raising
  // beta can only shrink the count.
  BipartiteGraph g = RandomSmallGraph(99, 12, 0.4);
  std::uint64_t prev = UINT64_MAX;
  for (std::uint32_t beta = 1; beta <= 4; ++beta) {
    CountSink sink;
    EnumerateMaximalBicliquesPruned(g, 2, 2 * beta, {}, sink.AsSink());
    EXPECT_LE(sink.count(), prev) << "beta=" << beta;
    prev = sink.count();
  }
}

TEST(MbcPipeline, OrderingInvariance) {
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.4);
    EnumOptions id_ord, deg_ord;
    id_ord.ordering = VertexOrdering::kId;
    deg_ord.ordering = VertexOrdering::kDegreeDesc;
    CollectSink a, b;
    EnumerateMaximalBicliquesPruned(g, 2, 2, id_ord, a.AsSink());
    EnumerateMaximalBicliquesPruned(g, 2, 2, deg_ord, b.AsSink());
    EXPECT_EQ(Canonicalize(a.results()), Canonicalize(b.results()))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fairbc
