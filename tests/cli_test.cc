// End-to-end tests of the fairbc_cli binary (gen -> stats -> enum ->
// verify round trip through real process invocations). The binary path
// is injected by CMake as FAIRBC_CLI_PATH.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace fairbc {
namespace {

#ifndef FAIRBC_CLI_PATH
#define FAIRBC_CLI_PATH "fairbc_cli"
#endif

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  std::string out_path = ::testing::TempDir() + "/fairbc_cli_out.txt";
  std::string cmd =
      std::string(FAIRBC_CLI_PATH) + " " + args + " > " + out_path + " 2>&1";
  int rc = std::system(cmd.c_str());
  std::ifstream in(out_path);
  std::stringstream ss;
  ss << in.rdbuf();
  return {WEXITSTATUS(rc), ss.str()};
}

std::string GraphPath() {
  return ::testing::TempDir() + "/fairbc_cli_graph.fbg";
}

TEST(CliEndToEnd, GenStatsEnumVerifyRoundTrip) {
  std::string graph = GraphPath();
  std::string results = ::testing::TempDir() + "/fairbc_cli_results.txt";

  CommandResult gen = RunCli("gen --out=" + graph +
                          " --kind=affiliation --nu=300 --nv=300"
                          " --communities=15 --seed=5");
  ASSERT_EQ(gen.exit_code, 0) << gen.output;
  EXPECT_NE(gen.output.find("wrote BipartiteGraph"), std::string::npos);

  CommandResult stats = RunCli("stats --graph=" + graph);
  ASSERT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("butterflies"), std::string::npos);

  CommandResult enumerate =
      RunCli("enum --graph=" + graph +
          " --model=ssfbc --alpha=2 --beta=2 --delta=1 --out=" + results);
  ASSERT_EQ(enumerate.exit_code, 0) << enumerate.output;
  EXPECT_NE(enumerate.output.find("wrote"), std::string::npos);

  CommandResult verify = RunCli("verify --graph=" + graph +
                             " --results=" + results +
                             " --model=ssfbc --alpha=2 --beta=2 --delta=1");
  ASSERT_EQ(verify.exit_code, 0) << verify.output;
  EXPECT_NE(verify.output.find("OK:"), std::string::npos);
}

TEST(CliEndToEnd, VerifyRejectsWrongParameters) {
  std::string graph = GraphPath();
  std::string results = ::testing::TempDir() + "/fairbc_cli_results2.txt";
  ASSERT_EQ(RunCli("gen --out=" + graph +
                " --kind=affiliation --nu=300 --nv=300 --communities=15"
                " --seed=5")
                .exit_code,
            0);
  ASSERT_EQ(RunCli("enum --graph=" + graph +
                " --model=ssfbc --alpha=2 --beta=2 --delta=1 --out=" + results)
                .exit_code,
            0);
  // Re-verifying under beta=3 must fail: the stored results were maximal
  // for beta=2.
  CommandResult verify = RunCli("verify --graph=" + graph +
                             " --results=" + results +
                             " --model=ssfbc --alpha=2 --beta=3 --delta=1");
  EXPECT_NE(verify.exit_code, 0);
}

TEST(CliEndToEnd, CountOnlyMode) {
  std::string graph = GraphPath();
  ASSERT_EQ(RunCli("gen --out=" + graph +
                " --kind=affiliation --nu=300 --nv=300 --communities=15"
                " --seed=5")
                .exit_code,
            0);
  CommandResult count = RunCli("enum --graph=" + graph +
                            " --model=bsfbc --alpha=1 --beta=1 --delta=1"
                            " --count-only");
  ASSERT_EQ(count.exit_code, 0) << count.output;
  EXPECT_NE(count.output.find("count:"), std::string::npos);
}

// Extracts the value of a flat `"key":value` / `"key":"value"` JSON
// field from a single-line response; empty when absent.
std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  std::string out;
  if (json[pos] == '"') {
    for (++pos; pos < json.size() && json[pos] != '"'; ++pos) out += json[pos];
  } else {
    for (; pos < json.size() && json[pos] != ',' && json[pos] != '}'; ++pos) {
      out += json[pos];
    }
  }
  return out;
}

TEST(CliEndToEnd, SnapshotSaveLoadRoundTrip) {
  std::string graph = GraphPath();
  std::string snap = ::testing::TempDir() + "/fairbc_cli_graph.snap";
  ASSERT_EQ(RunCli("gen --out=" + graph +
                " --kind=affiliation --nu=300 --nv=300 --communities=15"
                " --seed=5")
                .exit_code,
            0);

  CommandResult save =
      RunCli("snapshot save --graph=" + graph + " --out=" + snap);
  ASSERT_EQ(save.exit_code, 0) << save.output;
  EXPECT_NE(save.output.find("wrote snapshot"), std::string::npos);

  CommandResult load = RunCli("snapshot load --graph=" + snap);
  ASSERT_EQ(load.exit_code, 0) << load.output;
  EXPECT_NE(load.output.find("loaded snapshot"), std::string::npos);
  // Save and load report the same content version.
  auto version_of = [](const std::string& s) {
    auto pos = s.find("version ");
    return s.substr(pos, 8 + 18);
  };
  EXPECT_EQ(version_of(save.output), version_of(load.output));

  // Corrupt snapshots fail with a Status, not a crash.
  {
    std::ofstream out(snap, std::ios::binary | std::ios::app);
    out << "garbage";
  }
  CommandResult corrupt = RunCli("snapshot load --graph=" + snap);
  EXPECT_NE(corrupt.exit_code, 0);
  EXPECT_NE(corrupt.output.find("CORRUPT_INPUT"), std::string::npos);
}

TEST(CliEndToEnd, JsonOutputMatchesAcrossFormats) {
  std::string graph = GraphPath();
  std::string snap = ::testing::TempDir() + "/fairbc_cli_json.snap";
  ASSERT_EQ(RunCli("gen --out=" + graph +
                " --kind=affiliation --nu=300 --nv=300 --communities=15"
                " --seed=5")
                .exit_code,
            0);
  ASSERT_EQ(RunCli("snapshot save --graph=" + graph + " --out=" + snap)
                .exit_code,
            0);

  const std::string params =
      " --model=ssfbc --alpha=2 --beta=2 --delta=1 --count-only"
      " --output=json";
  CommandResult from_text = RunCli("enum --graph=" + graph + params);
  ASSERT_EQ(from_text.exit_code, 0) << from_text.output;
  CommandResult from_snap =
      RunCli("enum --graph=" + snap + " --format=snapshot" + params);
  ASSERT_EQ(from_snap.exit_code, 0) << from_snap.output;

  // Same graph content → same count and result-set digest, whichever
  // format it was loaded from.
  EXPECT_NE(JsonField(from_text.output, "count"), "");
  EXPECT_EQ(JsonField(from_text.output, "count"),
            JsonField(from_snap.output, "count"));
  EXPECT_NE(JsonField(from_text.output, "digest"), "");
  EXPECT_EQ(JsonField(from_text.output, "digest"),
            JsonField(from_snap.output, "digest"));
  EXPECT_EQ(JsonField(from_text.output, "budget_exhausted"), "false");
}

TEST(CliEndToEnd, UnknownCommandFails) {
  CommandResult r = RunCli("frobnicate");
  EXPECT_NE(r.exit_code, 0);
}

TEST(CliEndToEnd, MissingGraphFlagFails) {
  CommandResult r = RunCli("stats");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("--graph is required"), std::string::npos);
}

TEST(CliEndToEnd, UnknownFlagWarns) {
  std::string graph = GraphPath();
  ASSERT_EQ(RunCli("gen --out=" + graph + " --kind=uniform --nu=20 --nv=20"
                " --edges=50")
                .exit_code,
            0);
  CommandResult r = RunCli("stats --graph=" + graph + " --bogus-flag=1");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown flag --bogus-flag"), std::string::npos);
}

}  // namespace
}  // namespace fairbc
