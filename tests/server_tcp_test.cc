// In-process tests of the fairbc_server front end (service/server.h):
// request validation (the `alpha=-1` wrap class of bugs), uniform
// quit/stop stream semantics, and the concurrent TCP server — ≥4
// simultaneous client sessions with interleaved load/query/drop, session
// ids in every response, the --max-sessions admission bound, and the
// stop-then-drain shutdown. Runs the real sockets and session threads in
// this process so the TSan CI job sees every interleaving.

#include "service/server.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/graph_catalog.h"
#include "service/query_executor.h"

namespace fairbc {
namespace {

BipartiteGraph ServerTestGraph(std::uint64_t seed = 29) {
  AffiliationConfig config;
  config.num_upper = 200;
  config.num_lower = 200;
  config.num_communities = 12;
  config.seed = seed;
  return MakeAffiliation(config);
}

std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  std::string value;
  if (json[pos] == '"') {
    for (++pos; pos < json.size() && json[pos] != '"'; ++pos) {
      value += json[pos];
    }
  } else {
    for (; pos < json.size() && json[pos] != ',' && json[pos] != '}'; ++pos) {
      value += json[pos];
    }
  }
  return value;
}

// --- request validation -----------------------------------------------------

Status BuildStatus(const std::string& line) {
  auto built = BuildQueryRequest(ParseRequestLine(line));
  return built.ok() ? Status::OK() : built.status();
}

TEST(BuildQueryRequestTest, RejectsNegativeAndOutOfRangeNumerics) {
  // The original bug: `alpha=-1` wrapped through static_cast<uint32_t>
  // to 4294967295 and silently ran an absurd query.
  EXPECT_FALSE(BuildStatus("query graph=g alpha=-1").ok());
  EXPECT_FALSE(BuildStatus("query graph=g beta=-7").ok());
  EXPECT_FALSE(BuildStatus("query graph=g delta=-1").ok());
  EXPECT_FALSE(BuildStatus("query graph=g alpha=4294967295").ok());
  EXPECT_FALSE(BuildStatus("query graph=g alpha=abc").ok());
  EXPECT_FALSE(BuildStatus("query graph=g alpha=3x").ok());
  EXPECT_FALSE(BuildStatus("query graph=g threads=-2").ok());
  EXPECT_FALSE(BuildStatus("query graph=g threads=9999").ok());
  EXPECT_FALSE(BuildStatus("query graph=g budget=-1").ok());
  const Status alpha = BuildStatus("query graph=g alpha=-1");
  EXPECT_NE(alpha.ToString().find("alpha"), std::string::npos);
}

TEST(BuildQueryRequestTest, ValidatesThetaIntoUnitInterval) {
  EXPECT_FALSE(BuildStatus("query graph=g theta=-0.1").ok());
  EXPECT_FALSE(BuildStatus("query graph=g theta=1.5").ok());
  EXPECT_FALSE(BuildStatus("query graph=g theta=nope").ok());
  EXPECT_TRUE(BuildStatus("query graph=g theta=0").ok());
  EXPECT_TRUE(BuildStatus("query graph=g theta=1").ok());
  EXPECT_TRUE(BuildStatus("query graph=g theta=0.4").ok());
}

TEST(BuildQueryRequestTest, AcceptsDefaultsAndBoundaryValues) {
  auto built = BuildQueryRequest(
      ParseRequestLine("query graph=g alpha=0 beta=1000000000 delta=0"));
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().params.alpha, 0u);
  EXPECT_EQ(built.value().params.beta, 1'000'000'000u);
}

TEST(ServerSessionTest, SweepRejectsNegativeAndMalformedLists) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServerTestGraph()).ok());
  QueryExecutor executor(catalog, {});
  ServerSession session(catalog, executor, /*id=*/7);

  bool stop = false;
  std::string response;
  // The original bug: std::stoul("-1") wraps instead of failing.
  ASSERT_TRUE(session.Handle("sweep graph=g alphas=-1", &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "false") << response;
  ASSERT_TRUE(
      session.Handle("sweep graph=g alphas=1,zap betas=2", &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "false") << response;
  ASSERT_TRUE(session.Handle("sweep graph=g alphas=2 betas=2 deltas=1,2",
                             &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "true") << response;
  EXPECT_EQ(JsonField(response, "queries"), "2");
  EXPECT_EQ(JsonField(response, "session"), "7");
}

TEST(ServerSessionTest, QueryErrorsCarrySessionIdAndOkFalse) {
  GraphCatalog catalog;
  QueryExecutor executor(catalog, {});
  ServerSession session(catalog, executor, /*id=*/3);
  bool stop = false;
  std::string response;
  ASSERT_TRUE(session.Handle("query graph=g alpha=-1", &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "false");
  EXPECT_EQ(JsonField(response, "session"), "3");
  EXPECT_NE(response.find("alpha"), std::string::npos);
}

// --- stream (stdin mode) semantics ------------------------------------------

TEST(ServeStreamTest, StopRequestsServerShutdownQuitDoesNot) {
  GraphCatalog catalog;
  QueryExecutor executor(catalog, {});

  {
    ServerSession session(catalog, executor, 0);
    std::istringstream in("ping\nstop\nping\n");
    std::ostringstream out;
    EXPECT_TRUE(ServeStream(in, out, session));  // stop latched.
    // stop ends the session: the trailing ping is never answered.
    EXPECT_EQ(out.str().find("ping", out.str().find("stop")),
              std::string::npos);
  }
  {
    ServerSession session(catalog, executor, 0);
    std::istringstream in("ping\nquit\n");
    std::ostringstream out;
    EXPECT_FALSE(ServeStream(in, out, session));
  }
  {  // End of stream without quit/stop: clean non-stop return.
    ServerSession session(catalog, executor, 0);
    std::istringstream in("ping\n");
    std::ostringstream out;
    EXPECT_FALSE(ServeStream(in, out, session));
    EXPECT_EQ(JsonField(out.str(), "session"), "0");
  }
}

// --- TCP --------------------------------------------------------------------

/// Minimal blocking line client against 127.0.0.1:port.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  bool Send(const std::string& line) {
    std::string data = line + "\n";
    std::size_t off = 0;
    while (off < data.size()) {
      // MSG_NOSIGNAL: sending to a closed session must fail, not SIGPIPE
      // the test binary.
      ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one \n-terminated line ("" on EOF/error).
  std::string RecvLine() {
    std::string line;
    char c;
    for (;;) {
      ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) return "";
      if (c == '\n') return line;
      line += c;
    }
  }

  std::string Ask(const std::string& line) {
    if (!Send(line)) return "";
    return RecvLine();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// A server running in a background thread for the duration of a test.
class ServerFixture {
 public:
  explicit ServerFixture(unsigned max_sessions = 8,
                         std::size_t cache_capacity = 256) {
    QueryExecutorOptions options;
    options.num_threads = 2;
    options.cache_capacity = cache_capacity;
    executor_ = std::make_unique<QueryExecutor>(catalog_, options);
    TcpServerOptions tcp;
    tcp.port = 0;  // ephemeral
    tcp.max_sessions = max_sessions;
    server_ = std::make_unique<TcpServer>(catalog_, *executor_, tcp);
    FAIRBC_CHECK(server_->Listen().ok());
    serve_thread_ = std::thread([this] {
      server_->Serve();
      serve_returned_.store(true, std::memory_order_release);
    });
  }

  ~ServerFixture() {
    server_->RequestStop();
    serve_thread_.join();
  }

  int port() const { return server_->port(); }
  TcpServer& server() { return *server_; }
  GraphCatalog& catalog() { return catalog_; }
  QueryExecutor& executor() { return *executor_; }
  bool serve_returned() const {
    return serve_returned_.load(std::memory_order_acquire);
  }

 private:
  GraphCatalog catalog_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<TcpServer> server_;
  std::thread serve_thread_;
  std::atomic<bool> serve_returned_{false};
};

/// Acceptance criterion: ≥4 simultaneous client sessions with
/// interleaved load/query/drop — distinct session ids, every response
/// tagged, identical digests for identical parameters across sessions.
TEST(TcpServerTest, FourConcurrentSessionsInterleaved) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());
  const std::string snap = ::testing::TempDir() + "/tcp_extra.snap";
  ASSERT_TRUE(WriteSnapshot(ServerTestGraph(/*seed=*/31), snap).ok());

  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  std::vector<std::string> session_ids(kClients);
  std::vector<std::vector<std::string>> digests(kClients);
  // Not vector<bool>: concurrent writers need distinct objects, and
  // vector<bool> packs its flags into shared words (a data race).
  std::array<std::atomic<bool>, kClients> failed{};
  std::barrier sync(kClients);

  auto run_client = [&](int idx) {
    LineClient client(fx.port());
    if (!client.connected()) {
      failed[idx] = true;
      return;
    }
    // All four sessions are provably simultaneous: each holds its
    // connection across the barrier below.
    std::string pong = client.Ask("ping");
    session_ids[idx] = JsonField(pong, "session");
    sync.arrive_and_wait();
    for (int round = 0; round < kRounds; ++round) {
      // Interleave per-session catalog churn (load/drop of a private
      // name) with queries against the shared graph.
      const std::string mine = "side" + std::to_string(idx);
      std::string loaded = client.Ask("load name=" + mine + " path=" + snap +
                                      (idx % 2 ? " format=mmap" : ""));
      if (JsonField(loaded, "ok") != "true") failed[idx] = true;
      const std::uint32_t alpha = 2 + (round % 2);
      std::string reply =
          client.Ask("query graph=g alpha=" + std::to_string(alpha) +
                     " beta=2 delta=1");
      if (JsonField(reply, "ok") != "true" ||
          JsonField(reply, "session") != session_ids[idx]) {
        failed[idx] = true;
      }
      digests[idx].push_back(JsonField(reply, "digest"));
      std::string dropped = client.Ask("drop name=" + mine);
      if (JsonField(dropped, "ok") != "true") failed[idx] = true;
    }
    sync.arrive_and_wait();
    client.Ask("quit");
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) clients.emplace_back(run_client, i);
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_FALSE(failed[i].load()) << "client " << i;
    EXPECT_FALSE(session_ids[i].empty());
    ASSERT_EQ(digests[i].size(), static_cast<std::size_t>(kRounds));
    // Same parameter point ⇒ same digest, whichever session asked.
    EXPECT_EQ(digests[i][0], digests[0][0]);
    EXPECT_EQ(digests[i][1], digests[0][1]);
    for (int j = 0; j < i; ++j) {
      EXPECT_NE(session_ids[i], session_ids[j]) << "session ids must differ";
    }
  }
  EXPECT_GE(fx.server().sessions_started(), 4u);
}

TEST(TcpServerTest, MaxSessionsBoundTurnsExtraClientsAway) {
  ServerFixture fx(/*max_sessions=*/1);

  LineClient first(fx.port());
  ASSERT_TRUE(first.connected());
  // Round-trip before the second connect so admission has happened.
  ASSERT_EQ(JsonField(first.Ask("ping"), "ok"), "true");

  LineClient second(fx.port());
  ASSERT_TRUE(second.connected());
  const std::string rejected = second.RecvLine();
  EXPECT_EQ(JsonField(rejected, "ok"), "false") << rejected;
  EXPECT_NE(rejected.find("server full"), std::string::npos) << rejected;

  // After the first session quits, the slot frees up.
  first.Ask("quit");
  for (int attempt = 0;; ++attempt) {
    LineClient retry(fx.port());
    ASSERT_TRUE(retry.connected());
    std::string pong = retry.Ask("ping");
    if (JsonField(pong, "ok") == "true") {
      retry.Ask("quit");
      break;
    }
    ASSERT_LT(attempt, 200) << "slot never freed after quit";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(TcpServerTest, StopStopsAcceptingAndDrainsActiveSessions) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());

  LineClient survivor(fx.port());
  ASSERT_TRUE(survivor.connected());
  ASSERT_EQ(JsonField(survivor.Ask("ping"), "ok"), "true");

  {
    LineClient stopper(fx.port());
    ASSERT_TRUE(stopper.connected());
    std::string reply = stopper.Ask("stop");
    EXPECT_EQ(JsonField(reply, "ok"), "true");
    EXPECT_EQ(JsonField(reply, "cmd"), "stop");
  }

  // The surviving session keeps working while the server drains...
  std::string reply = survivor.Ask("query graph=g alpha=2 beta=2 delta=1");
  EXPECT_EQ(JsonField(reply, "ok"), "true") << reply;
  EXPECT_FALSE(fx.serve_returned()) << "drain must wait for live sessions";

  // ...and Serve() returns only after it ends.
  survivor.Ask("quit");
  for (int i = 0; i < 500 && !fx.serve_returned(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fx.serve_returned());

  // No new connections are admitted after stop: connect either fails or
  // is closed without a served response.
  LineClient late(fx.port());
  if (late.connected()) {
    EXPECT_EQ(late.Ask("ping"), "");
  }
}

/// Concurrent identical queries across *sessions* coalesce: the cache
/// command must report the single-flight counters.
TEST(TcpServerTest, CacheCommandReportsCoalescedCounter) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());

  constexpr int kClients = 4;
  std::barrier sync(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      LineClient client(fx.port());
      if (!client.connected()) return;
      sync.arrive_and_wait();
      std::string reply = client.Ask("query graph=g alpha=2 beta=2 delta=1");
      if (JsonField(reply, "ok") == "true") ok_count.fetch_add(1);
      client.Ask("quit");
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(ok_count.load(), kClients);

  // One execution total; everyone else coalesced or hit the cache.
  EXPECT_EQ(fx.executor().execution_count(), 1u);
  LineClient client(fx.port());
  ASSERT_TRUE(client.connected());
  std::string cache = client.Ask("cache");
  EXPECT_EQ(JsonField(cache, "ok"), "true");
  EXPECT_EQ(JsonField(cache, "executions"), "1") << cache;
  const std::string coalesced = JsonField(cache, "coalesced");
  ASSERT_FALSE(coalesced.empty());
  EXPECT_EQ(std::stoul(coalesced) + std::stoul(JsonField(cache, "hits")),
            static_cast<unsigned long>(kClients - 1))
      << cache;
  client.Ask("quit");
}

}  // namespace
}  // namespace fairbc
