// In-process tests of the fairbc_server front end (service/server.h):
// request validation (the `alpha=-1` wrap class of bugs), uniform
// quit/stop stream semantics, and the concurrent TCP server — ≥4
// simultaneous client sessions with interleaved load/query/drop, session
// ids in every response, the --max-sessions admission bound, and the
// stop-then-drain shutdown. Runs the real sockets and session threads in
// this process so the TSan CI job sees every interleaving.

#include "service/server.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "graph/generators.h"
#include "graph/snapshot.h"
#include "service/graph_catalog.h"
#include "service/query_executor.h"
#include "service/wire.h"

namespace fairbc {
namespace {

BipartiteGraph ServerTestGraph(std::uint64_t seed = 29) {
  AffiliationConfig config;
  config.num_upper = 200;
  config.num_lower = 200;
  config.num_communities = 12;
  config.seed = seed;
  return MakeAffiliation(config);
}

std::string JsonField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = json.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  std::string value;
  if (json[pos] == '"') {
    for (++pos; pos < json.size() && json[pos] != '"'; ++pos) {
      value += json[pos];
    }
  } else {
    for (; pos < json.size() && json[pos] != ',' && json[pos] != '}'; ++pos) {
      value += json[pos];
    }
  }
  return value;
}

// --- request validation -----------------------------------------------------

Status BuildStatus(const std::string& line) {
  auto built = BuildQueryRequest(ParseRequestLine(line));
  return built.ok() ? Status::OK() : built.status();
}

TEST(BuildQueryRequestTest, RejectsNegativeAndOutOfRangeNumerics) {
  // The original bug: `alpha=-1` wrapped through static_cast<uint32_t>
  // to 4294967295 and silently ran an absurd query.
  EXPECT_FALSE(BuildStatus("query graph=g alpha=-1").ok());
  EXPECT_FALSE(BuildStatus("query graph=g beta=-7").ok());
  EXPECT_FALSE(BuildStatus("query graph=g delta=-1").ok());
  EXPECT_FALSE(BuildStatus("query graph=g alpha=4294967295").ok());
  EXPECT_FALSE(BuildStatus("query graph=g alpha=abc").ok());
  EXPECT_FALSE(BuildStatus("query graph=g alpha=3x").ok());
  EXPECT_FALSE(BuildStatus("query graph=g threads=-2").ok());
  EXPECT_FALSE(BuildStatus("query graph=g threads=9999").ok());
  EXPECT_FALSE(BuildStatus("query graph=g budget=-1").ok());
  const Status alpha = BuildStatus("query graph=g alpha=-1");
  EXPECT_NE(alpha.ToString().find("alpha"), std::string::npos);
}

TEST(BuildQueryRequestTest, ValidatesThetaIntoUnitInterval) {
  EXPECT_FALSE(BuildStatus("query graph=g theta=-0.1").ok());
  EXPECT_FALSE(BuildStatus("query graph=g theta=1.5").ok());
  EXPECT_FALSE(BuildStatus("query graph=g theta=nope").ok());
  EXPECT_TRUE(BuildStatus("query graph=g theta=0").ok());
  EXPECT_TRUE(BuildStatus("query graph=g theta=1").ok());
  EXPECT_TRUE(BuildStatus("query graph=g theta=0.4").ok());
}

TEST(BuildQueryRequestTest, AcceptsDefaultsAndBoundaryValues) {
  auto built = BuildQueryRequest(
      ParseRequestLine("query graph=g alpha=0 beta=1000000000 delta=0"));
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built.value().params.alpha, 0u);
  EXPECT_EQ(built.value().params.beta, 1'000'000'000u);
}

TEST(ServerSessionTest, SweepRejectsNegativeAndMalformedLists) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServerTestGraph()).ok());
  QueryExecutor executor(catalog, {});
  ServerSession session(catalog, executor, /*id=*/7);

  bool stop = false;
  std::string response;
  // The original bug: std::stoul("-1") wraps instead of failing.
  ASSERT_TRUE(session.Handle("sweep graph=g alphas=-1", &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "false") << response;
  ASSERT_TRUE(
      session.Handle("sweep graph=g alphas=1,zap betas=2", &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "false") << response;
  ASSERT_TRUE(session.Handle("sweep graph=g alphas=2 betas=2 deltas=1,2",
                             &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "true") << response;
  EXPECT_EQ(JsonField(response, "queries"), "2");
  EXPECT_EQ(JsonField(response, "session"), "7");
}

TEST(ServerSessionTest, QueryErrorsCarrySessionIdAndOkFalse) {
  GraphCatalog catalog;
  QueryExecutor executor(catalog, {});
  ServerSession session(catalog, executor, /*id=*/3);
  bool stop = false;
  std::string response;
  ASSERT_TRUE(session.Handle("query graph=g alpha=-1", &response, &stop));
  EXPECT_EQ(JsonField(response, "ok"), "false");
  EXPECT_EQ(JsonField(response, "session"), "3");
  EXPECT_NE(response.find("alpha"), std::string::npos);
}

// --- stream (stdin mode) semantics ------------------------------------------

TEST(ServeStreamTest, StopRequestsServerShutdownQuitDoesNot) {
  GraphCatalog catalog;
  QueryExecutor executor(catalog, {});

  {
    ServerSession session(catalog, executor, 0);
    std::istringstream in("ping\nstop\nping\n");
    std::ostringstream out;
    EXPECT_TRUE(ServeStream(in, out, session));  // stop latched.
    // stop ends the session: the trailing ping is never answered.
    EXPECT_EQ(out.str().find("ping", out.str().find("stop")),
              std::string::npos);
  }
  {
    ServerSession session(catalog, executor, 0);
    std::istringstream in("ping\nquit\n");
    std::ostringstream out;
    EXPECT_FALSE(ServeStream(in, out, session));
  }
  {  // End of stream without quit/stop: clean non-stop return.
    ServerSession session(catalog, executor, 0);
    std::istringstream in("ping\n");
    std::ostringstream out;
    EXPECT_FALSE(ServeStream(in, out, session));
    EXPECT_EQ(JsonField(out.str(), "session"), "0");
  }
}

// --- TCP --------------------------------------------------------------------

/// Minimal blocking line client against 127.0.0.1:port.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  bool Send(const std::string& line) { return SendRaw(line + "\n"); }

  /// Writes `data` verbatim (no newline appended).
  bool SendRaw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      // MSG_NOSIGNAL: sending to a closed session must fail, not SIGPIPE
      // the test binary.
      ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one \n-terminated line ("" on EOF/error).
  std::string RecvLine() {
    std::string line;
    char c;
    for (;;) {
      ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) return "";
      if (c == '\n') return line;
      line += c;
    }
  }

  std::string Ask(const std::string& line) {
    if (!Send(line)) return "";
    return RecvLine();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

/// A server running in a background thread for the duration of a test.
class ServerFixture {
 public:
  explicit ServerFixture(unsigned max_sessions = 8,
                         std::size_t cache_capacity = 256)
      : ServerFixture(WithMaxSessions(max_sessions), cache_capacity) {}

  /// Full-options constructor for admission/deadline/request-cap tests;
  /// `tcp.port` is forced ephemeral.
  explicit ServerFixture(TcpServerOptions tcp, std::size_t cache_capacity = 256,
                         unsigned executor_threads = 2) {
    QueryExecutorOptions options;
    options.num_threads = executor_threads;
    options.cache_capacity = cache_capacity;
    executor_ = std::make_unique<QueryExecutor>(catalog_, options);
    tcp.port = 0;  // ephemeral
    server_ = std::make_unique<TcpServer>(catalog_, *executor_, tcp);
    FAIRBC_CHECK(server_->Listen().ok());
    serve_thread_ = std::thread([this] {
      server_->Serve();
      serve_returned_.store(true, std::memory_order_release);
    });
  }

  ~ServerFixture() {
    server_->RequestStop();
    serve_thread_.join();
  }

  int port() const { return server_->port(); }
  TcpServer& server() { return *server_; }
  GraphCatalog& catalog() { return catalog_; }
  QueryExecutor& executor() { return *executor_; }
  bool serve_returned() const {
    return serve_returned_.load(std::memory_order_acquire);
  }

 private:
  static TcpServerOptions WithMaxSessions(unsigned max_sessions) {
    TcpServerOptions tcp;
    tcp.max_sessions = max_sessions;
    return tcp;
  }

  GraphCatalog catalog_;
  std::unique_ptr<QueryExecutor> executor_;
  std::unique_ptr<TcpServer> server_;
  std::thread serve_thread_;
  std::atomic<bool> serve_returned_{false};
};

// --- binary wire protocol ----------------------------------------------------

/// Minimal blocking binary-protocol client; mirrors LineClient but in
/// frames (service/wire.h). Send* enqueue nothing — each writes the
/// encoded frame straight to the socket, so pipelining is just calling
/// Send* repeatedly before the first Recv.
class WireClient {
 public:
  explicit WireClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    connected_ = fd_ >= 0 && ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                       sizeof(addr)) == 0;
  }
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  bool connected() const { return connected_; }

  bool SendFrame(wire::Opcode op, std::uint64_t request_id,
                 std::string payload = "") {
    wire::Frame frame;
    frame.opcode = op;
    frame.request_id = request_id;
    frame.payload = std::move(payload);
    std::string encoded;
    wire::EncodeFrame(frame, &encoded);
    return SendRaw(encoded);
  }

  bool SendQuery(std::uint64_t request_id, const std::string& line) {
    auto built = BuildQueryRequest(ParseRequestLine(line));
    FAIRBC_CHECK(built.ok());
    return SendFrame(wire::Opcode::kQuery, request_id,
                     wire::EncodeQueryPayload(built.value()));
  }

  bool SendRaw(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one complete frame; false on EOF/protocol error.
  bool RecvFrame(wire::Frame* frame) {
    for (;;) {
      std::size_t consumed = 0;
      const auto decoded =
          wire::DecodeFrame(rbuf_, /*max_payload=*/64u << 20, frame, &consumed);
      if (decoded.status == wire::FrameStatus::kOk) {
        rbuf_.erase(0, consumed);
        return true;
      }
      if (decoded.status == wire::FrameStatus::kBad) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      rbuf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server closed the connection (clean EOF).
  bool AtEof() {
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string rbuf_;
};

/// Acceptance criterion: ≥4 simultaneous client sessions with
/// interleaved load/query/drop — distinct session ids, every response
/// tagged, identical digests for identical parameters across sessions.
TEST(TcpServerTest, FourConcurrentSessionsInterleaved) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());
  const std::string snap = ::testing::TempDir() + "/tcp_extra.snap";
  ASSERT_TRUE(WriteSnapshot(ServerTestGraph(/*seed=*/31), snap).ok());

  constexpr int kClients = 4;
  constexpr int kRounds = 6;
  std::vector<std::string> session_ids(kClients);
  std::vector<std::vector<std::string>> digests(kClients);
  // Not vector<bool>: concurrent writers need distinct objects, and
  // vector<bool> packs its flags into shared words (a data race).
  std::array<std::atomic<bool>, kClients> failed{};
  std::barrier sync(kClients);

  auto run_client = [&](int idx) {
    LineClient client(fx.port());
    if (!client.connected()) {
      failed[idx] = true;
      return;
    }
    // All four sessions are provably simultaneous: each holds its
    // connection across the barrier below.
    std::string pong = client.Ask("ping");
    session_ids[idx] = JsonField(pong, "session");
    sync.arrive_and_wait();
    for (int round = 0; round < kRounds; ++round) {
      // Interleave per-session catalog churn (load/drop of a private
      // name) with queries against the shared graph.
      const std::string mine = "side" + std::to_string(idx);
      std::string loaded = client.Ask("load name=" + mine + " path=" + snap +
                                      (idx % 2 ? " format=mmap" : ""));
      if (JsonField(loaded, "ok") != "true") failed[idx] = true;
      const std::uint32_t alpha = 2 + (round % 2);
      std::string reply =
          client.Ask("query graph=g alpha=" + std::to_string(alpha) +
                     " beta=2 delta=1");
      if (JsonField(reply, "ok") != "true" ||
          JsonField(reply, "session") != session_ids[idx]) {
        failed[idx] = true;
      }
      digests[idx].push_back(JsonField(reply, "digest"));
      std::string dropped = client.Ask("drop name=" + mine);
      if (JsonField(dropped, "ok") != "true") failed[idx] = true;
    }
    sync.arrive_and_wait();
    client.Ask("quit");
  };

  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) clients.emplace_back(run_client, i);
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_FALSE(failed[i].load()) << "client " << i;
    EXPECT_FALSE(session_ids[i].empty());
    ASSERT_EQ(digests[i].size(), static_cast<std::size_t>(kRounds));
    // Same parameter point ⇒ same digest, whichever session asked.
    EXPECT_EQ(digests[i][0], digests[0][0]);
    EXPECT_EQ(digests[i][1], digests[0][1]);
    for (int j = 0; j < i; ++j) {
      EXPECT_NE(session_ids[i], session_ids[j]) << "session ids must differ";
    }
  }
  EXPECT_GE(fx.server().sessions_started(), 4u);
}

TEST(TcpServerTest, MaxSessionsBoundTurnsExtraClientsAway) {
  ServerFixture fx(/*max_sessions=*/1);

  LineClient first(fx.port());
  ASSERT_TRUE(first.connected());
  // Round-trip before the second connect so admission has happened.
  ASSERT_EQ(JsonField(first.Ask("ping"), "ok"), "true");

  LineClient second(fx.port());
  ASSERT_TRUE(second.connected());
  const std::string rejected = second.RecvLine();
  EXPECT_EQ(JsonField(rejected, "ok"), "false") << rejected;
  EXPECT_NE(rejected.find("server full"), std::string::npos) << rejected;

  // After the first session quits, the slot frees up.
  first.Ask("quit");
  for (int attempt = 0;; ++attempt) {
    LineClient retry(fx.port());
    ASSERT_TRUE(retry.connected());
    std::string pong = retry.Ask("ping");
    if (JsonField(pong, "ok") == "true") {
      retry.Ask("quit");
      break;
    }
    ASSERT_LT(attempt, 200) << "slot never freed after quit";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(TcpServerTest, StopStopsAcceptingAndDrainsActiveSessions) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());

  LineClient survivor(fx.port());
  ASSERT_TRUE(survivor.connected());
  ASSERT_EQ(JsonField(survivor.Ask("ping"), "ok"), "true");

  {
    LineClient stopper(fx.port());
    ASSERT_TRUE(stopper.connected());
    std::string reply = stopper.Ask("stop");
    EXPECT_EQ(JsonField(reply, "ok"), "true");
    EXPECT_EQ(JsonField(reply, "cmd"), "stop");
  }

  // The surviving session keeps working while the server drains...
  std::string reply = survivor.Ask("query graph=g alpha=2 beta=2 delta=1");
  EXPECT_EQ(JsonField(reply, "ok"), "true") << reply;
  EXPECT_FALSE(fx.serve_returned()) << "drain must wait for live sessions";

  // ...and Serve() returns only after it ends.
  survivor.Ask("quit");
  for (int i = 0; i < 500 && !fx.serve_returned(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(fx.serve_returned());

  // No new connections are admitted after stop: connect either fails or
  // is closed without a served response.
  LineClient late(fx.port());
  if (late.connected()) {
    EXPECT_EQ(late.Ask("ping"), "");
  }
}

/// Concurrent identical queries across *sessions* coalesce: the cache
/// command must report the single-flight counters.
TEST(TcpServerTest, CacheCommandReportsCoalescedCounter) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());

  constexpr int kClients = 4;
  std::barrier sync(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&] {
      LineClient client(fx.port());
      if (!client.connected()) return;
      sync.arrive_and_wait();
      std::string reply = client.Ask("query graph=g alpha=2 beta=2 delta=1");
      if (JsonField(reply, "ok") == "true") ok_count.fetch_add(1);
      client.Ask("quit");
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(ok_count.load(), kClients);

  // One execution total; everyone else coalesced or hit the cache.
  EXPECT_EQ(fx.executor().execution_count(), 1u);
  LineClient client(fx.port());
  ASSERT_TRUE(client.connected());
  std::string cache = client.Ask("cache");
  EXPECT_EQ(JsonField(cache, "ok"), "true");
  EXPECT_EQ(JsonField(cache, "executions"), "1") << cache;
  const std::string coalesced = JsonField(cache, "coalesced");
  ASSERT_FALSE(coalesced.empty());
  EXPECT_EQ(std::stoul(coalesced) + std::stoul(JsonField(cache, "hits")),
            static_cast<unsigned long>(kClients - 1))
      << cache;
  client.Ask("quit");
}

// --- binary protocol over the shared port -----------------------------------

TEST(WireServerTest, PingPongEchoesRequestId) {
  ServerFixture fx;
  WireClient client(fx.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendFrame(wire::Opcode::kPing, 0xABCDEF01u));
  wire::Frame pong;
  ASSERT_TRUE(client.RecvFrame(&pong));
  EXPECT_EQ(pong.opcode, wire::Opcode::kPong);
  EXPECT_EQ(pong.request_id, 0xABCDEF01u);
  EXPECT_TRUE(pong.payload.empty());
}

/// The two protocols must agree byte-for-byte on query results: a binary
/// kQuery and the equivalent line-protocol query produce the same digest
/// (the smoke script's oracle property, provable in-process).
TEST(WireServerTest, BinaryQueryMatchesLineProtocolOracle) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());
  const std::string query = "query graph=g alpha=2 beta=2 delta=1";

  LineClient oracle(fx.port());
  ASSERT_TRUE(oracle.connected());
  const std::string line_reply = oracle.Ask(query);
  ASSERT_EQ(JsonField(line_reply, "ok"), "true") << line_reply;

  WireClient client(fx.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendQuery(7, query));
  wire::Frame reply;
  ASSERT_TRUE(client.RecvFrame(&reply));
  ASSERT_EQ(reply.opcode, wire::Opcode::kReply);
  EXPECT_EQ(reply.request_id, 7u);
  EXPECT_EQ(JsonField(reply.payload, "ok"), "true") << reply.payload;
  EXPECT_EQ(JsonField(reply.payload, "digest"), JsonField(line_reply, "digest"));
  EXPECT_EQ(JsonField(reply.payload, "count"), JsonField(line_reply, "count"));
  oracle.Ask("quit");
}

/// kCommand carries the line grammar verbatim, so binary clients reach
/// every command (load/cache/graphs/...) without a second code path.
TEST(WireServerTest, CommandFramesSpeakTheLineGrammar) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());
  WireClient client(fx.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.SendFrame(wire::Opcode::kCommand, 1, "catalog"));
  wire::Frame reply;
  ASSERT_TRUE(client.RecvFrame(&reply));
  ASSERT_EQ(reply.opcode, wire::Opcode::kReply);
  EXPECT_EQ(JsonField(reply.payload, "ok"), "true") << reply.payload;
  EXPECT_NE(reply.payload.find("\"g\""), std::string::npos) << reply.payload;

  // A malformed query via kCommand gets the server-side validation
  // error, typed as a kError/bad_request frame on the binary protocol.
  ASSERT_TRUE(
      client.SendFrame(wire::Opcode::kCommand, 2, "query graph=g alpha=-1"));
  ASSERT_TRUE(client.RecvFrame(&reply));
  ASSERT_EQ(reply.opcode, wire::Opcode::kError);
  EXPECT_EQ(reply.request_id, 2u);
  wire::ErrorCode code;
  std::string message;
  ASSERT_TRUE(wire::DecodeErrorPayload(reply.payload, &code, &message).ok());
  EXPECT_EQ(code, wire::ErrorCode::kBadRequest);
  EXPECT_NE(message.find("alpha"), std::string::npos) << message;
}

/// Line and binary clients interleave on one server; both see tagged
/// sessions, and identical queries agree across protocols.
TEST(WireServerTest, MixedLineAndBinaryClientsConcurrently) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());
  const std::string query = "query graph=g alpha=2 beta=3 delta=1";

  constexpr int kEach = 3;
  std::barrier sync(2 * kEach);
  std::array<std::atomic<bool>, 2 * kEach> failed{};
  std::vector<std::string> digests(2 * kEach);
  std::vector<std::thread> threads;
  for (int i = 0; i < kEach; ++i) {
    threads.emplace_back([&, i] {
      LineClient client(fx.port());
      if (!client.connected()) {
        failed[i] = true;
        return;
      }
      sync.arrive_and_wait();
      const std::string reply = client.Ask(query);
      if (JsonField(reply, "ok") != "true") failed[i] = true;
      digests[i] = JsonField(reply, "digest");
      client.Ask("quit");
    });
    threads.emplace_back([&, i] {
      const int slot = kEach + i;
      WireClient client(fx.port());
      if (!client.connected()) {
        failed[slot] = true;
        return;
      }
      sync.arrive_and_wait();
      wire::Frame reply;
      if (!client.SendQuery(1, query) || !client.RecvFrame(&reply) ||
          reply.opcode != wire::Opcode::kReply ||
          JsonField(reply.payload, "ok") != "true") {
        failed[slot] = true;
        return;
      }
      digests[slot] = JsonField(reply.payload, "digest");
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < 2 * kEach; ++i) {
    EXPECT_FALSE(failed[i].load()) << "client " << i;
    EXPECT_EQ(digests[i], digests[0]) << "client " << i;
  }
  EXPECT_FALSE(digests[0].empty());
  // All six asked the same parameter point: exactly one run of the engine.
  EXPECT_EQ(fx.executor().execution_count(), 1u);
}

/// A pipelined duplicate-heavy burst: responses come back in request
/// order with matching ids, and the executor runs each distinct
/// parameter point exactly once (acceptance criterion: executions ==
/// unique keys under pipelining).
TEST(WireServerTest, PipelinedBurstKeepsOrderAndCoalescesDuplicates) {
  ServerFixture fx;
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());

  WireClient client(fx.port());
  ASSERT_TRUE(client.connected());

  // 12 requests, 3 distinct parameter points, interleaved — plus pings
  // mixed in to prove ordering holds across opcodes.
  constexpr int kRequests = 12;
  constexpr unsigned kUnique = 3;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
    if (i % 4 == 3) {
      ASSERT_TRUE(client.SendFrame(wire::Opcode::kPing, id));
    } else {
      const unsigned alpha = 2 + (static_cast<unsigned>(i) % kUnique);
      ASSERT_TRUE(client.SendQuery(
          id, "query graph=g alpha=" + std::to_string(alpha) +
                  " beta=2 delta=1"));
    }
  }
  for (int i = 0; i < kRequests; ++i) {
    wire::Frame reply;
    ASSERT_TRUE(client.RecvFrame(&reply)) << "response " << i;
    EXPECT_EQ(reply.request_id, static_cast<std::uint64_t>(i) + 1)
        << "responses must arrive in request order";
    if (i % 4 == 3) {
      EXPECT_EQ(reply.opcode, wire::Opcode::kPong);
    } else {
      ASSERT_EQ(reply.opcode, wire::Opcode::kReply);
      EXPECT_EQ(JsonField(reply.payload, "ok"), "true") << reply.payload;
    }
  }
  EXPECT_EQ(fx.executor().execution_count(), kUnique);
}

/// Admission control: with --max-inflight=1 and the only slot held by a
/// deliberately-blocked leader, further queries get the typed busy error
/// on BOTH protocols — and the server stays fully responsive (pings).
TEST(WireServerTest, OverloadedServerSaysBusyOnBothProtocols) {
  TcpServerOptions tcp;
  tcp.max_inflight = 1;
  ServerFixture fx(tcp);
  ASSERT_TRUE(fx.catalog().AddGraph("g", ServerTestGraph()).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  fx.executor().SetExecuteHook([&](const QueryRequest& req) {
    if (req.params.alpha != 7) return;  // only the blocker query stalls.
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  WireClient blocker(fx.port());
  ASSERT_TRUE(blocker.connected());
  ASSERT_TRUE(blocker.SendQuery(1, "query graph=g alpha=7 beta=2 delta=1"));
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Line protocol: typed JSON error, connection stays usable.
  LineClient line(fx.port());
  ASSERT_TRUE(line.connected());
  const std::string busy = line.Ask("query graph=g alpha=3 beta=2 delta=1");
  EXPECT_EQ(JsonField(busy, "ok"), "false") << busy;
  EXPECT_EQ(JsonField(busy, "code"), "busy") << busy;
  EXPECT_EQ(JsonField(line.Ask("ping"), "ok"), "true");

  // Binary protocol: kError frame with ErrorCode::kBusy.
  WireClient binary(fx.port());
  ASSERT_TRUE(binary.connected());
  ASSERT_TRUE(binary.SendQuery(5, "query graph=g alpha=4 beta=2 delta=1"));
  wire::Frame err;
  ASSERT_TRUE(binary.RecvFrame(&err));
  ASSERT_EQ(err.opcode, wire::Opcode::kError);
  EXPECT_EQ(err.request_id, 5u);
  wire::ErrorCode code;
  std::string message;
  ASSERT_TRUE(wire::DecodeErrorPayload(err.payload, &code, &message).ok());
  EXPECT_EQ(code, wire::ErrorCode::kBusy);
  EXPECT_NE(message.find("max-inflight"), std::string::npos) << message;

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  wire::Frame reply;
  ASSERT_TRUE(blocker.RecvFrame(&reply));
  EXPECT_EQ(reply.opcode, wire::Opcode::kReply);
  EXPECT_EQ(JsonField(reply.payload, "ok"), "true") << reply.payload;
  fx.executor().SetExecuteHook(nullptr);
  line.Ask("quit");
}

/// Requests beyond --max-request-bytes get the typed too_large error:
/// a complete huge line, an unterminated line that outgrows the cap, and
/// a binary frame whose length prefix alone announces the excess.
TEST(WireServerTest, OversizedRequestsRejectedWithTypedError) {
  TcpServerOptions tcp;
  tcp.max_request_bytes = 1024;
  ServerFixture fx(tcp);

  {  // Complete-but-huge line (newline arrives with the payload).
    LineClient client(fx.port());
    ASSERT_TRUE(client.connected());
    const std::string reply =
        client.Ask("ping " + std::string(4096, 'x'));
    EXPECT_EQ(JsonField(reply, "ok"), "false") << reply;
    EXPECT_EQ(JsonField(reply, "code"), "too_large") << reply;
    EXPECT_EQ(client.RecvLine(), "") << "connection must close after";
  }
  {  // Unterminated line that outgrows the cap mid-stream: a hostile
    // newline-free sender must be cut off, not buffered without bound.
    LineClient client(fx.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendRaw(std::string(4096, 'y')));  // no '\n'
    const std::string reply = client.RecvLine();
    EXPECT_EQ(JsonField(reply, "code"), "too_large") << reply;
    EXPECT_EQ(client.RecvLine(), "");
  }
  {  // Binary: payload length in the header exceeds the cap; rejected
    // without buffering the (never-sent) payload.
    WireClient client(fx.port());
    ASSERT_TRUE(client.connected());
    std::string header;
    wire::AppendU16(&header, wire::kMagic);
    wire::AppendU8(&header, wire::kVersion);
    wire::AppendU8(&header, static_cast<std::uint8_t>(wire::Opcode::kCommand));
    wire::AppendU64(&header, 9);
    wire::AppendU32(&header, 1u << 20);  // 1 MiB announced, cap is 1 KiB.
    ASSERT_TRUE(client.SendRaw(header));
    wire::Frame err;
    ASSERT_TRUE(client.RecvFrame(&err));
    ASSERT_EQ(err.opcode, wire::Opcode::kError);
    wire::ErrorCode code;
    std::string message;
    ASSERT_TRUE(wire::DecodeErrorPayload(err.payload, &code, &message).ok());
    EXPECT_EQ(code, wire::ErrorCode::kTooLarge);
    EXPECT_TRUE(client.AtEof()) << "corrupt-length stream must close";
  }
}

/// Corrupt binary framing (bad magic after negotiation, unknown opcode,
/// response opcode sent at the server) earns one kError then a close.
TEST(WireServerTest, CorruptFramesGetOneErrorThenClose) {
  ServerFixture fx;
  {  // Unknown opcode.
    WireClient client(fx.port());
    ASSERT_TRUE(client.connected());
    std::string header;
    wire::AppendU16(&header, wire::kMagic);
    wire::AppendU8(&header, wire::kVersion);
    wire::AppendU8(&header, 0x55);
    wire::AppendU64(&header, 1);
    wire::AppendU32(&header, 0);
    ASSERT_TRUE(client.SendRaw(header));
    wire::Frame err;
    ASSERT_TRUE(client.RecvFrame(&err));
    EXPECT_EQ(err.opcode, wire::Opcode::kError);
    EXPECT_TRUE(client.AtEof());
  }
  {  // Unsupported version.
    WireClient client(fx.port());
    ASSERT_TRUE(client.connected());
    std::string header;
    wire::AppendU16(&header, wire::kMagic);
    wire::AppendU8(&header, 99);
    wire::AppendU8(&header, static_cast<std::uint8_t>(wire::Opcode::kPing));
    wire::AppendU64(&header, 1);
    wire::AppendU32(&header, 0);
    ASSERT_TRUE(client.SendRaw(header));
    wire::Frame err;
    ASSERT_TRUE(client.RecvFrame(&err));
    ASSERT_EQ(err.opcode, wire::Opcode::kError);
    wire::ErrorCode code;
    std::string message;
    ASSERT_TRUE(wire::DecodeErrorPayload(err.payload, &code, &message).ok());
    EXPECT_EQ(code, wire::ErrorCode::kUnsupportedVersion);
    EXPECT_TRUE(client.AtEof());
  }
  {  // A response opcode aimed at the server.
    WireClient client(fx.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.SendFrame(wire::Opcode::kPong, 1));
    wire::Frame err;
    ASSERT_TRUE(client.RecvFrame(&err));
    EXPECT_EQ(err.opcode, wire::Opcode::kError);
    EXPECT_TRUE(client.AtEof());
  }
}

/// --client-deadline-ms reaps idle connections; a fresh connection keeps
/// working afterwards.
TEST(WireServerTest, IdleConnectionsReapedAfterDeadline) {
  TcpServerOptions tcp;
  tcp.client_deadline_ms = 100;
  ServerFixture fx(tcp);

  LineClient idle(fx.port());
  ASSERT_TRUE(idle.connected());
  ASSERT_EQ(JsonField(idle.Ask("ping"), "ok"), "true");
  // No traffic for well past the deadline: the server must close it.
  EXPECT_EQ(idle.RecvLine(), "") << "idle connection should be reaped";

  LineClient fresh(fx.port());
  ASSERT_TRUE(fresh.connected());
  EXPECT_EQ(JsonField(fresh.Ask("ping"), "ok"), "true");
  fresh.Ask("quit");
}

}  // namespace
}  // namespace fairbc
