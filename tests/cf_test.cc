#include <gtest/gtest.h>

#include "recsys/cf.h"
#include "recsys/recommend_graph.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;

TEST(ItemBasedCF, CosineSimilarityExact) {
  // item0: users {0,1}; item1: users {0,1}; item2: user {2}.
  BipartiteGraph g = MakeGraph(3, 3,
                               {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 2}},
                               {0, 0, 0}, {0, 0, 1});
  ItemBasedCF cf(g);
  EXPECT_DOUBLE_EQ(cf.Similarity(0, 1), 1.0);  // identical user sets.
  EXPECT_DOUBLE_EQ(cf.Similarity(0, 2), 0.0);  // disjoint user sets.
  EXPECT_DOUBLE_EQ(cf.Similarity(1, 0), cf.Similarity(0, 1));  // symmetric.
  EXPECT_DOUBLE_EQ(cf.Similarity(2, 2), 1.0);  // self.
}

TEST(ItemBasedCF, PartialOverlap) {
  // item0: {0,1}; item1: {1,2}: cosine = 1 / sqrt(2*2) = 0.5.
  BipartiteGraph g = MakeGraph(3, 2, {{0, 0}, {1, 0}, {1, 1}, {2, 1}},
                               {0, 0, 0}, {0, 1});
  ItemBasedCF cf(g);
  EXPECT_NEAR(cf.Similarity(0, 1), 0.5, 1e-12);
}

TEST(ItemBasedCF, TopKExcludesOwnedAndRanks) {
  // user0 owns item0. item1 is similar to item0; item2 unrelated.
  BipartiteGraph g = MakeGraph(
      3, 3, {{0, 0}, {1, 0}, {1, 1}, {2, 2}}, {0, 0, 0}, {0, 0, 1});
  ItemBasedCF cf(g);
  auto top = cf.TopK(0, 2);
  ASSERT_EQ(top.size(), 1u);  // only item1 has positive evidence.
  EXPECT_EQ(top[0], 1u);
}

TEST(ItemBasedCF, TopKEmptyForColdUser) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {0, 1}}, {0, 0}, {0, 1});
  ItemBasedCF cf(g);
  EXPECT_TRUE(cf.TopK(1, 3).empty());  // user1 has no interactions.
}

TEST(RecommendationGraph, EdgesAreTopK) {
  BiasedInteractionsConfig config;
  config.num_users = 40;
  config.num_items = 20;
  config.interactions_per_user = 6;
  config.seed = 3;
  BipartiteGraph interactions = MakeBiasedInteractions(config);
  ItemBasedCF cf(interactions);
  BipartiteGraph rec = BuildRecommendationGraph(interactions, cf, 5);
  EXPECT_EQ(rec.NumUpper(), interactions.NumUpper());
  EXPECT_EQ(rec.NumLower(), interactions.NumLower());
  for (VertexId u = 0; u < rec.NumUpper(); ++u) {
    EXPECT_LE(rec.Degree(Side::kUpper, u), 5u);
  }
  // Attributes preserved.
  for (VertexId v = 0; v < rec.NumLower(); ++v) {
    EXPECT_EQ(rec.Attr(Side::kLower, v), interactions.Attr(Side::kLower, v));
  }
}

TEST(BiasedInteractions, PopularityBiasShowsUpInCF) {
  // The planted exposure bias must push the plain CF top-k toward
  // popular items well beyond their 50% share (the case studies'
  // premise).
  // The item pool must dwarf per-user interactions, otherwise users
  // already own the popular items and TopK (which excludes owned items)
  // cannot surface them.
  BiasedInteractionsConfig config;
  config.num_users = 200;
  config.num_items = 240;
  config.num_clusters = 4;
  config.interactions_per_user = 8;
  config.popularity_boost = 0.7;
  config.seed = 9;
  BipartiteGraph interactions = MakeBiasedInteractions(config);
  ItemBasedCF cf(interactions);
  BipartiteGraph rec = BuildRecommendationGraph(interactions, cf, 5);
  EXPECT_GT(PopularShare(rec), 0.6);
}

TEST(BiasedInteractions, Deterministic) {
  BiasedInteractionsConfig config;
  config.seed = 12;
  BipartiteGraph a = MakeBiasedInteractions(config);
  BipartiteGraph b = MakeBiasedInteractions(config);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

TEST(PopularShare, EmptyGraphIsZero) {
  BipartiteGraph g = MakeGraph(1, 1, {}, {0}, {0});
  EXPECT_EQ(PopularShare(g), 0.0);
}

}  // namespace
}  // namespace fairbc
