#include <gtest/gtest.h>

#include <fstream>

#include "core/pipeline.h"
#include "graph/biclique_io.h"
#include "test_util.h"

namespace fairbc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fairbc_bio_" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(BicliqueIo, RoundTrip) {
  std::vector<Biclique> in;
  in.push_back(Biclique{{0, 2, 5}, {1, 3}});
  in.push_back(Biclique{{7}, {0, 1, 2, 9}});
  std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteBicliques(in, path).ok());
  auto out = ReadBicliques(path);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value(), in);
}

TEST(BicliqueIo, EmptySet) {
  std::string path = TempPath("empty.txt");
  ASSERT_TRUE(WriteBicliques({}, path).ok());
  auto out = ReadBicliques(path);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(BicliqueIo, RoundTripRealEnumeration) {
  BipartiteGraph g = testing::RandomSmallGraph(31, 10, 0.5);
  FairBicliqueParams params{1, 1, 1, 0.0};
  CollectSink sink;
  EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
  std::string path = TempPath("real.txt");
  ASSERT_TRUE(WriteBicliques(sink.results(), path).ok());
  auto out = ReadBicliques(path);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), sink.results());
}

TEST(BicliqueIo, MissingFile) {
  auto out = ReadBicliques(TempPath("does_not_exist"));
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(BicliqueIo, MissingSeparator) {
  std::string path = TempPath("nosep.txt");
  WriteFile(path, "U 1 2 3\n");
  auto out = ReadBicliques(path);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruptInput);
}

TEST(BicliqueIo, BadLeadingTag) {
  std::string path = TempPath("badtag.txt");
  WriteFile(path, "X 1 ; V 2\n");
  EXPECT_FALSE(ReadBicliques(path).ok());
}

TEST(BicliqueIo, BadVertexId) {
  std::string path = TempPath("badid.txt");
  WriteFile(path, "U 1 banana ; V 2\n");
  EXPECT_FALSE(ReadBicliques(path).ok());
}

TEST(BicliqueIo, SkipsBlankLines) {
  std::string path = TempPath("blank.txt");
  WriteFile(path, "U 1 ; V 2\n\nU 3 ; V 4\n");
  auto out = ReadBicliques(path);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().size(), 2u);
}

}  // namespace
}  // namespace fairbc
