// Streaming result-pipeline tests: TopKKeeper order-independent
// determinism, ChunkSink flush boundaries, streamed-vs-batch
// byte-equivalence (count + order-independent digest) across all four
// engine paths at thread widths {1, 2, 8}, top-k agreement with the full
// enumeration under every rank with branch-and-bound pruning live, the
// streaming single-flight (late subscriber attaches to the leader's
// chunk stream), payload-cache chunk replay, the chunk wire codec, and
// the server line protocol's chunked framing + strict trace/cache
// argument validation. Runs in the TSan job (.github/workflows/ci.yml)
// so the chunk fan-out and prune-bound publication are raced for real.

#include "core/result_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/enumerate.h"
#include "core/search_context.h"
#include "graph/generators.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/query_executor.h"
#include "service/server.h"
#include "service/wire.h"

namespace fairbc {
namespace {

BipartiteGraph StreamTestGraph() {
  AffiliationConfig config;
  config.num_upper = 400;
  config.num_lower = 400;
  config.num_communities = 20;
  config.seed = 23;
  return MakeAffiliation(config);
}

// Small enough that even the naive engine (enumerate-then-filter)
// finishes instantly; the equivalence sweep runs all four paths on it.
BipartiteGraph SmallTestGraph() { return MakeUniformRandom(60, 60, 240, 2, 9); }

QueryRequest BaseRequest(const std::string& graph, FairModel model,
                         FairAlgo algo, unsigned threads) {
  QueryRequest req;
  req.graph = graph;
  req.model = model;
  req.algo = algo;
  req.params.alpha = 2;
  req.params.beta = 2;
  req.params.delta = 1;
  req.options.num_threads = threads;
  req.use_cache = false;
  return req;
}

Biclique MakeBiclique(std::vector<VertexId> upper, std::vector<VertexId> lower) {
  Biclique b;
  b.upper = std::move(upper);
  b.lower = std::move(lower);
  return b;
}

// Reassembles a stream's payload into the same order-independent summary
// the executor computes, so streamed output can be compared byte-for-byte
// (count/digest/max sizes) against a batch run.
QuerySummary SummarizeChunks(
    const std::vector<QueryExecutor::StreamChunk>& chunks) {
  DigestAccumulator acc;
  BicliqueSink sink = acc.Wrap([](const Biclique&) { return true; });
  for (const auto& chunk : chunks)
    for (const Biclique& b : chunk.bicliques) sink(b);
  QuerySummary summary;
  acc.FillSummary(&summary);
  return summary;
}

// Async chunk/result collector for ExecuteStreaming (which returns after
// admission; chunks and completion arrive from runner threads).
struct StreamRun {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  QueryResult result;
  std::vector<QueryExecutor::StreamChunk> chunks;

  void Start(QueryExecutor& exec, const QueryRequest& req) {
    exec.ExecuteStreaming(
        req,
        [this](const QueryExecutor::StreamChunk& chunk) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.push_back(chunk);
        },
        [this](QueryResult r) {
          std::lock_guard<std::mutex> lock(mu);
          result = std::move(r);
          done = true;
          cv.notify_all();
        });
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
  }
};

// --- TopKKeeper ------------------------------------------------------------

TEST(TopKKeeperTest, KeepsBestFirstWithCanonicalTieBreak) {
  TopKKeeper keeper(3, TopKRank::kWeight);
  keeper.Offer(MakeBiclique({1}, {2}));          // weight 1
  keeper.Offer(MakeBiclique({1, 2}, {3, 4}));    // weight 4
  keeper.Offer(MakeBiclique({5, 6}, {7, 8}));    // weight 4, later canon
  keeper.Offer(MakeBiclique({0}, {1, 2, 3}));    // weight 3
  EXPECT_TRUE(keeper.full());
  EXPECT_EQ(keeper.KthValue(), 3u);

  std::vector<Biclique> best = keeper.Take();
  ASSERT_EQ(best.size(), 3u);
  EXPECT_EQ(best[0], MakeBiclique({1, 2}, {3, 4}));  // tie: smaller canon wins
  EXPECT_EQ(best[1], MakeBiclique({5, 6}, {7, 8}));
  EXPECT_EQ(best[2], MakeBiclique({0}, {1, 2, 3}));
  EXPECT_EQ(keeper.size(), 0u);  // Take drains.
}

TEST(TopKKeeperTest, ResultIsAPureFunctionOfTheOfferedSet) {
  // Many rank ties (every shape below has weight 2 or 4), so only the
  // canonical tie-break keeps the output deterministic.
  std::vector<Biclique> pool;
  for (VertexId i = 0; i < 24; ++i) {
    pool.push_back(MakeBiclique({i, static_cast<VertexId>(i + 100)},
                                {static_cast<VertexId>(i + 200)}));
    pool.push_back(MakeBiclique({static_cast<VertexId>(i + 50)},
                                {static_cast<VertexId>(i + 300),
                                 static_cast<VertexId>(i + 400)}));
  }
  for (TopKRank rank :
       {TopKRank::kWeight, TopKRank::kSize, TopKRank::kBalance}) {
    // Reference: sort the whole pool by (rank desc, canonical asc).
    std::vector<Biclique> expect = pool;
    std::sort(expect.begin(), expect.end(),
              [rank](const Biclique& a, const Biclique& b) {
                const std::uint64_t ra =
                    RankValue(a.upper.size(), a.lower.size(), rank);
                const std::uint64_t rb =
                    RankValue(b.upper.size(), b.lower.size(), rank);
                if (ra != rb) return ra > rb;
                return a < b;
              });
    expect.resize(7);

    for (unsigned seed = 1; seed <= 5; ++seed) {
      std::vector<Biclique> shuffled = pool;
      std::mt19937 rng(seed);
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      TopKKeeper keeper(7, rank);
      for (const Biclique& b : shuffled) keeper.Offer(b);
      EXPECT_EQ(keeper.Take(), expect)
          << "rank=" << ToString(rank) << " seed=" << seed;
    }
  }
}

TEST(TopKKeeperTest, KZeroClampsToOne) {
  TopKKeeper keeper(0, TopKRank::kWeight);
  EXPECT_EQ(keeper.k(), 1u);
  keeper.Offer(MakeBiclique({1}, {2}));
  keeper.Offer(MakeBiclique({1, 2}, {3, 4}));
  std::vector<Biclique> best = keeper.Take();
  ASSERT_EQ(best.size(), 1u);
  EXPECT_EQ(best[0], MakeBiclique({1, 2}, {3, 4}));
}

// --- ChunkSink -------------------------------------------------------------

TEST(ChunkSinkTest, FlushBoundariesCheckpointsAndFinish) {
  std::vector<std::size_t> sizes;
  std::vector<std::uint64_t> checkpoints;
  ChunkSink sink(3, [&](std::vector<Biclique>&& chunk,
                        const StreamCheckpoint& cp) {
    sizes.push_back(chunk.size());
    checkpoints.push_back(cp.results);
    return true;
  });
  for (VertexId i = 0; i < 7; ++i)
    EXPECT_TRUE(sink.Accept(MakeBiclique({i}, {i})));
  sink.Finish();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 1}));
  EXPECT_EQ(checkpoints, (std::vector<std::uint64_t>{3, 6, 7}));
  EXPECT_EQ(sink.results(), 7u);
  EXPECT_EQ(sink.chunks(), 3u);
}

TEST(ChunkSinkTest, EmptyRunStillFlushesOnce) {
  std::size_t flushes = 0;
  ChunkSink sink(4, [&](std::vector<Biclique>&& chunk, const StreamCheckpoint&) {
    ++flushes;
    EXPECT_TRUE(chunk.empty());
    return true;
  });
  sink.Finish();
  EXPECT_EQ(flushes, 1u);
}

TEST(ChunkSinkTest, FlushRejectionAbortsTheRun) {
  ChunkSink sink(1, [](std::vector<Biclique>&&, const StreamCheckpoint&) {
    return false;
  });
  EXPECT_FALSE(sink.Accept(MakeBiclique({1}, {2})));
  // Aborted sinks stay aborted: further accepts keep refusing.
  EXPECT_FALSE(sink.Accept(MakeBiclique({3}, {4})));
}

// --- streamed vs batch equivalence ------------------------------------------

struct EnginePath {
  const char* graph;
  FairModel model;
  FairAlgo algo;
};

TEST(StreamEquivalenceTest, StreamedDigestMatchesBatchAcrossEnginesAndThreads) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("big", StreamTestGraph()).ok());
  ASSERT_TRUE(catalog.AddGraph("small", SmallTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  options.stream_chunk_results = 32;  // force multi-chunk streams.
  QueryExecutor exec(catalog, options);

  const EnginePath paths[] = {
      {"big", FairModel::kSsfbc, FairAlgo::kPlusPlus},
      {"big", FairModel::kSsfbc, FairAlgo::kBcem},
      {"big", FairModel::kBsfbc, FairAlgo::kBcem},
      // The naive engine is exponential on the affiliation graph; the
      // fourth path runs on the small uniform graph instead.
      {"small", FairModel::kSsfbc, FairAlgo::kNaive},
  };
  for (const EnginePath& path : paths) {
    for (unsigned threads : {1u, 2u, 8u}) {
      QueryRequest req = BaseRequest(path.graph, path.model, path.algo, threads);
      if (std::string(path.graph) == "big") {
        req.params.alpha = 3;
        req.params.beta = 3;
      }
      const std::string label = std::string(path.graph) + "/" +
                                ToString(path.model) + "/" +
                                ToString(path.algo) + "/t" +
                                std::to_string(threads);

      QueryResult batch = exec.Execute(req);
      ASSERT_TRUE(batch.status.ok()) << label << ": " << batch.status.ToString();

      StreamRun stream;
      stream.Start(exec, req);
      stream.Wait();
      ASSERT_TRUE(stream.result.status.ok())
          << label << ": " << stream.result.status.ToString();

      // Summary equivalence: the streamed summary is byte-identical to
      // the batch summary, and the reassembled chunk payload reproduces
      // it independently.
      EXPECT_EQ(stream.result.summary.count, batch.summary.count) << label;
      EXPECT_EQ(stream.result.summary.digest, batch.summary.digest) << label;
      EXPECT_EQ(stream.result.summary.max_upper, batch.summary.max_upper);
      EXPECT_EQ(stream.result.summary.max_lower, batch.summary.max_lower);
      EXPECT_TRUE(stream.result.bicliques.empty())
          << label << ": stream summaries must not duplicate the payload";

      const QuerySummary reassembled = SummarizeChunks(stream.chunks);
      EXPECT_EQ(reassembled.count, batch.summary.count) << label;
      EXPECT_EQ(reassembled.digest, batch.summary.digest) << label;
      EXPECT_EQ(reassembled.max_upper, batch.summary.max_upper) << label;
      EXPECT_EQ(reassembled.max_lower, batch.summary.max_lower) << label;

      // Stream framing invariants: 1-based contiguous seq, bounded chunk
      // width, cumulative checkpoints, exactly one final marker (last).
      ASSERT_FALSE(stream.chunks.empty()) << label;
      std::uint64_t delivered = 0;
      for (std::size_t i = 0; i < stream.chunks.size(); ++i) {
        const auto& chunk = stream.chunks[i];
        EXPECT_EQ(chunk.seq, i + 1) << label;
        EXPECT_LE(chunk.bicliques.size(), options.stream_chunk_results);
        delivered += chunk.bicliques.size();
        EXPECT_EQ(chunk.results_so_far, delivered) << label;
        EXPECT_EQ(chunk.final, i + 1 == stream.chunks.size()) << label;
      }
      EXPECT_EQ(delivered, batch.summary.count) << label;
    }
  }
}

// --- top-k -----------------------------------------------------------------

TEST(TopKQueryTest, TopKEqualsTopKOfFullEnumerationUnderEveryRank) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", StreamTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  QueryExecutor exec(catalog, options);

  QueryRequest full = BaseRequest("g", FairModel::kSsfbc, FairAlgo::kPlusPlus, 2);
  full.params.alpha = 3;
  full.params.beta = 3;
  full.include_bicliques = true;
  QueryResult everything = exec.Execute(full);
  ASSERT_TRUE(everything.status.ok());
  ASSERT_GT(everything.bicliques.size(), 16u);

  for (TopKRank rank :
       {TopKRank::kWeight, TopKRank::kSize, TopKRank::kBalance}) {
    TopKKeeper reference(10, rank);
    for (const Biclique& b : everything.bicliques) reference.Offer(b);
    const std::vector<Biclique> expect = reference.Take();

    for (unsigned threads : {1u, 8u}) {
      QueryRequest req = full;
      req.options.num_threads = threads;
      req.top_k = 10;
      req.rank = rank;
      QueryResult got = exec.Execute(req);
      ASSERT_TRUE(got.status.ok()) << ToString(rank);
      EXPECT_EQ(got.summary.count, expect.size()) << ToString(rank);
      EXPECT_EQ(got.bicliques, expect)
          << ToString(rank) << " t" << threads
          << ": pruned top-k must equal the top k of the full enumeration";
    }
  }
}

// --- streaming single-flight and payload cache ------------------------------

TEST(StreamSingleFlightTest, LateSubscriberAttachesToLeaderChunkStream) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", StreamTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  options.stream_chunk_results = 32;
  QueryExecutor exec(catalog, options);

  std::mutex mu;
  std::condition_variable cv;
  bool leader_parked = false;
  bool release = false;
  exec.SetExecuteHook([&](const QueryRequest&) {
    std::unique_lock<std::mutex> lock(mu);
    leader_parked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });

  QueryRequest req = BaseRequest("g", FairModel::kSsfbc, FairAlgo::kPlusPlus, 1);
  req.params.alpha = 3;
  req.params.beta = 3;
  req.use_cache = true;  // single-flight requires a cacheable query.

  StreamRun leader;
  leader.Start(exec, req);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return leader_parked; });
  }
  // The leader is parked pre-enumeration; this duplicate must attach to
  // its chunk stream instead of running the engines again.
  StreamRun follower;
  follower.Start(exec, req);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  leader.Wait();
  follower.Wait();
  exec.SetExecuteHook(nullptr);

  ASSERT_TRUE(leader.result.status.ok());
  ASSERT_TRUE(follower.result.status.ok());
  EXPECT_FALSE(leader.result.coalesced);
  EXPECT_TRUE(follower.result.coalesced);
  EXPECT_EQ(exec.execution_count(), 1u);

  const QuerySummary a = SummarizeChunks(leader.chunks);
  const QuerySummary b = SummarizeChunks(follower.chunks);
  EXPECT_GT(a.count, 0u);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(leader.chunks.size(), follower.chunks.size());
  EXPECT_EQ(follower.result.summary.digest, leader.result.summary.digest);
}

TEST(StreamCacheTest, RetainedPayloadReplaysChunksOnRepeat) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", StreamTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  options.stream_chunk_results = 32;
  QueryExecutor exec(catalog, options);

  QueryRequest req = BaseRequest("g", FairModel::kSsfbc, FairAlgo::kPlusPlus, 1);
  req.params.alpha = 3;
  req.params.beta = 3;
  req.use_cache = true;

  StreamRun first;
  first.Start(exec, req);
  first.Wait();
  ASSERT_TRUE(first.result.status.ok());
  EXPECT_FALSE(first.result.cache_hit);

  StreamRun second;
  second.Start(exec, req);
  second.Wait();
  ASSERT_TRUE(second.result.status.ok());
  EXPECT_TRUE(second.result.cache_hit);
  EXPECT_EQ(exec.execution_count(), 1u) << "replay must skip the engines";

  const QuerySummary a = SummarizeChunks(first.chunks);
  const QuerySummary b = SummarizeChunks(second.chunks);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(second.result.summary.digest, first.result.summary.digest);
}

// --- chunk wire codec -------------------------------------------------------

TEST(ChunkCodecTest, RoundTripTruncationsAndHostileCount) {
  const std::vector<Biclique> bicliques = {
      MakeBiclique({1, 2}, {3}),
      MakeBiclique({4}, {5, 6, 7}),
  };
  const std::string payload = wire::EncodeChunkPayload(3, 10, 99, bicliques);
  auto decoded = wire::DecodeChunkPayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().seq, 3u);
  EXPECT_EQ(decoded.value().results_so_far, 10u);
  EXPECT_EQ(decoded.value().nodes_so_far, 99u);
  EXPECT_EQ(decoded.value().bicliques, bicliques);

  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(wire::DecodeChunkPayload(payload.substr(0, len)).ok())
        << "truncation at " << len;
  }
  EXPECT_FALSE(wire::DecodeChunkPayload(payload + '\0').ok())
      << "trailing bytes must be rejected";

  // A hostile biclique count (declared 2^32-1 in a tiny payload) must be
  // rejected from the declared sizes, before any allocation.
  std::string hostile = payload;
  for (std::size_t i = 24; i < 28; ++i) hostile[i] = '\xff';
  EXPECT_FALSE(wire::DecodeChunkPayload(hostile).ok());
}

// --- server line protocol: chunk framing + strict validation ----------------

TEST(ServerStreamingTest, LineProtocolChunksCarryRequestIdAndEndMarker) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", StreamTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  options.stream_chunk_results = 32;
  QueryExecutor exec(catalog, options);
  ServerSession session(catalog, exec, 7);

  std::string response;
  bool stop = false;
  ASSERT_TRUE(session.Handle(
      "query graph=g model=ssfbc algo=pp alpha=3 beta=3 delta=1 cache=0 "
      "stream=1 rid=abc-123",
      &response, &stop));

  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= response.size()) {
    const std::size_t nl = response.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(response.substr(start));
      break;
    }
    lines.push_back(response.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 2u) << response.substr(0, 400);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("\"cmd\":\"chunk\""), std::string::npos) << i;
    EXPECT_NE(lines[i].find("\"request_id\":\"abc-123\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"session\":7"), std::string::npos) << i;
  }
  // The regular reply line is the end-of-stream marker and echoes the id.
  const std::string& last = lines.back();
  EXPECT_NE(last.find("\"ok\":true"), std::string::npos) << last;
  EXPECT_NE(last.find("\"request_id\":\"abc-123\""), std::string::npos);
  EXPECT_EQ(last.find("\"cmd\":\"chunk\""), std::string::npos);
}

TEST(ServerStreamingTest, TraceAndCacheArgumentsAreStrictlyValidated) {
  GraphCatalog catalog;
  QueryExecutor exec(catalog, {});
  ServerSession session(catalog, exec, 1);
  std::string response;
  bool stop = false;

  ASSERT_TRUE(session.Handle("trace bogus=1", &response, &stop));
  EXPECT_NE(response.find("\"code\":\"bad_argument\""), std::string::npos);
  EXPECT_NE(response.find("trace does not take \\\"bogus\\\""),
            std::string::npos)
      << response;

  ASSERT_TRUE(session.Handle("trace n=0", &response, &stop));
  EXPECT_NE(response.find("\"code\":\"bad_argument\""), std::string::npos);

  ASSERT_TRUE(session.Handle("trace n=zebra", &response, &stop));
  EXPECT_NE(response.find("\"code\":\"bad_argument\""), std::string::npos);

  ASSERT_TRUE(session.Handle("cache n=3", &response, &stop));
  EXPECT_NE(response.find("\"code\":\"bad_argument\""), std::string::npos);
  EXPECT_NE(response.find("cache does not take \\\"n\\\""), std::string::npos);

  ASSERT_TRUE(session.Handle("cache", &response, &stop));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

  // rid validation: embedded quote can never reach JSON verbatim.
  ASSERT_TRUE(session.Handle("query graph=g rid=bad\"token", &response, &stop));
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("rid"), std::string::npos);
}

TEST(RequestIdValidationTest, AcceptsTokensRejectsUnsafeBytes) {
  EXPECT_TRUE(ValidRequestId(""));
  EXPECT_TRUE(ValidRequestId("abc-123_XYZ.42:span/7"));
  EXPECT_TRUE(ValidRequestId(std::string(128, 'a')));
  EXPECT_FALSE(ValidRequestId(std::string(129, 'a')));
  EXPECT_FALSE(ValidRequestId("has space"));
  EXPECT_FALSE(ValidRequestId("has\"quote"));
  EXPECT_FALSE(ValidRequestId("has\\slash"));
  EXPECT_FALSE(ValidRequestId(std::string("nul\0byte", 8)));
  EXPECT_FALSE(ValidRequestId("tab\there"));
}

}  // namespace
}  // namespace fairbc
