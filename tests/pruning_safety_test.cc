// Pruning losslessness at the pipeline level: results must be identical
// with no pruning, core pruning, and colorful pruning, on graphs large
// enough for the reductions to actually fire.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Collect;

TEST(PruningSafety, SsfbcIdenticalAcrossPruningLevels) {
  AffiliationConfig config;
  config.num_upper = 120;
  config.num_lower = 120;
  config.num_communities = 10;
  config.community_upper_max = 8;
  config.community_lower_max = 8;
  config.noise_fraction = 0.2;
  config.seed = 21;
  BipartiteGraph g = MakeAffiliation(config);
  FairBicliqueParams params{2, 2, 1, 0.0};

  EnumOptions none, core, colorful;
  none.pruning = PruningLevel::kNone;
  core.pruning = PruningLevel::kCore;
  colorful.pruning = PruningLevel::kColorful;

  auto a = Collect(EnumerateSSFBCPlusPlus, g, params, none);
  auto b = Collect(EnumerateSSFBCPlusPlus, g, params, core);
  auto c = Collect(EnumerateSSFBCPlusPlus, g, params, colorful);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  // The reductions must actually remove vertices on this workload.
  CountSink sink;
  EnumStats stats = EnumerateSSFBCPlusPlus(g, params, colorful, sink.AsSink());
  EXPECT_LT(stats.remaining_lower, g.NumLower());
}

TEST(PruningSafety, BsfbcIdenticalAcrossPruningLevels) {
  AffiliationConfig config;
  config.num_upper = 90;
  config.num_lower = 90;
  config.num_communities = 8;
  config.community_upper_max = 8;
  config.community_lower_max = 8;
  config.noise_fraction = 0.2;
  config.seed = 22;
  BipartiteGraph g = MakeAffiliation(config);
  FairBicliqueParams params{1, 2, 1, 0.0};

  EnumOptions none, core, colorful;
  none.pruning = PruningLevel::kNone;
  core.pruning = PruningLevel::kCore;
  colorful.pruning = PruningLevel::kColorful;

  auto a = Collect(EnumerateBSFBCPlusPlus, g, params, none);
  auto b = Collect(EnumerateBSFBCPlusPlus, g, params, core);
  auto c = Collect(EnumerateBSFBCPlusPlus, g, params, colorful);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(PruningSafety, ResultsAreInOriginalIds) {
  // After pruning + compaction the emitted ids must refer to the input
  // graph (edges must exist there).
  AffiliationConfig config;
  config.num_upper = 80;
  config.num_lower = 80;
  config.num_communities = 6;
  config.seed = 23;
  BipartiteGraph g = MakeAffiliation(config);
  FairBicliqueParams params{2, 2, 1, 0.0};
  CollectSink sink;
  EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
  for (const Biclique& b : sink.results()) {
    for (VertexId u : b.upper) {
      ASSERT_LT(u, g.NumUpper());
      for (VertexId v : b.lower) {
        ASSERT_LT(v, g.NumLower());
        EXPECT_TRUE(g.HasEdge(u, v));
      }
    }
  }
}

TEST(PruningSafety, ProModelsUnaffectedByPruning) {
  AffiliationConfig config;
  config.num_upper = 70;
  config.num_lower = 70;
  config.num_communities = 6;
  config.seed = 24;
  BipartiteGraph g = MakeAffiliation(config);
  FairBicliqueParams params{1, 2, 2, 0.4};
  EnumOptions none, colorful;
  none.pruning = PruningLevel::kNone;
  colorful.pruning = PruningLevel::kColorful;
  EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params, none),
            Collect(EnumerateSSFBCPlusPlus, g, params, colorful));
  EXPECT_EQ(Collect(EnumerateBSFBCPlusPlus, g, params, none),
            Collect(EnumerateBSFBCPlusPlus, g, params, colorful));
}

}  // namespace
}  // namespace fairbc
