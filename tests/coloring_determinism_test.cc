// Determinism of the Jones–Plassmann coloring front-end: with
// degree-then-id priorities JP evaluates exactly the greedy coloring's
// fixpoint, so its output must be byte-identical (colors and color
// count) across thread counts {1, 2, 8} — and equal to GreedyColor —
// on every generator family. This is what keeps the CFCore/BCFCore
// masks independent of the thread count even though the parallel
// reduction colors with JP while --threads=1 keeps the serial greedy.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/coloring.h"
#include "core/fcore.h"
#include "core/reduction_context.h"
#include "core/two_hop_graph.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::RandomSmallGraph;

std::vector<std::pair<std::string, BipartiteGraph>> GeneratorFamilies() {
  std::vector<std::pair<std::string, BipartiteGraph>> graphs;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    graphs.emplace_back("random_small_" + std::to_string(seed),
                        RandomSmallGraph(seed, 14, 0.4));
  }
  graphs.emplace_back("uniform", MakeUniformRandom(220, 220, 1800, 2, 41));
  graphs.emplace_back("powerlaw", MakePowerLaw(220, 220, 1800, 2.2, 2, 42));
  AffiliationConfig config;
  config.num_upper = 160;
  config.num_lower = 160;
  config.num_communities = 12;
  config.seed = 43;
  graphs.emplace_back("affiliation", MakeAffiliation(config));
  return graphs;
}

TEST(JonesPlassmann, ByteIdenticalAcrossThreadCountsAndToGreedy) {
  for (const auto& [name, g] : GeneratorFamilies()) {
    const SideMasks masks = FCore(g, 2, 2);
    const UnipartiteGraph h = Construct2HopGraph(g, Side::kLower, 2, masks);
    const std::vector<char>& alive = masks.lower_alive;

    const Coloring greedy = GreedyColor(h, alive);
    const Coloring jp_serial = JonesPlassmannColor(h, alive);
    EXPECT_EQ(jp_serial.color, greedy.color) << name;
    EXPECT_EQ(jp_serial.num_colors, greedy.num_colors) << name;
    EXPECT_TRUE(IsProperColoring(h, alive, jp_serial)) << name;

    for (unsigned threads : {1u, 2u, 8u}) {
      ReductionContext ctx(threads);
      const Coloring jp = JonesPlassmannColor(h, alive, &ctx);
      EXPECT_EQ(jp.color, jp_serial.color) << name << " threads=" << threads;
      EXPECT_EQ(jp.num_colors, jp_serial.num_colors)
          << name << " threads=" << threads;
      EXPECT_TRUE(IsProperColoring(h, alive, jp))
          << name << " threads=" << threads;
    }
  }
}

TEST(JonesPlassmann, BiSideTwoHopGraphs) {
  for (const auto& [name, g] : GeneratorFamilies()) {
    const SideMasks masks = BFCore(g, 1, 1);
    const UnipartiteGraph h = BiConstruct2HopGraph(g, Side::kLower, 1, masks);
    const std::vector<char>& alive = masks.lower_alive;
    const Coloring greedy = GreedyColor(h, alive);
    for (unsigned threads : {2u, 8u}) {
      ReductionContext ctx(threads);
      const Coloring jp = JonesPlassmannColor(h, alive, &ctx);
      EXPECT_EQ(jp.color, greedy.color) << name << " threads=" << threads;
      EXPECT_EQ(jp.num_colors, greedy.num_colors)
          << name << " threads=" << threads;
    }
  }
}

TEST(JonesPlassmann, EmptyAndDeadGraphs) {
  UnipartiteGraph empty;
  EXPECT_EQ(JonesPlassmannColor(empty, {}).num_colors, 0u);

  UnipartiteGraph h = UnipartiteGraph::FromEdges(3, {{0, 1}}, {0, 0, 1}, 2);
  std::vector<char> dead(3, 0);
  const Coloring c = JonesPlassmannColor(h, dead);
  EXPECT_EQ(c.num_colors, 0u);
  EXPECT_EQ(c.color, (std::vector<std::uint32_t>(3, 0)));
}

}  // namespace
}  // namespace fairbc
