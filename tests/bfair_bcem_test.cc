#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::Collect;
using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

TEST(BFairBcem, CompleteBalancedBlock) {
  // Complete 4x4 with balanced attributes on both sides.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(4, 4, edges, {0, 0, 1, 1}, {0, 1, 0, 1});
  FairBicliqueParams params{2, 2, 0, 0.0};
  auto results = Collect(EnumerateBSFBC, g, params);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].upper, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(results[0].lower, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(results, Canonicalize(BruteForceBSFBC(g, params)));
}

TEST(BFairBcem, UpperUnfairnessForcesSubsets) {
  // Complete 3x4: upper classes (2,1); alpha=1, delta=0 forces picking
  // one of the two class-0 uppers -> two bi-side fair bicliques.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(3, 4, edges, {0, 0, 1}, {0, 1, 0, 1});
  FairBicliqueParams params{1, 1, 0, 0.0};
  auto results = Collect(EnumerateBSFBC, g, params);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(results, Canonicalize(BruteForceBSFBC(g, params)));
  for (const auto& b : results) {
    EXPECT_EQ(b.upper.size(), 2u);
    EXPECT_EQ(b.lower.size(), 4u);
  }
}

TEST(BFairBcem, BsfbcContainedInSomeSsfbc) {
  // Observation 6: every BSFBC is contained in a single-side fair
  // biclique.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    FairBicliqueParams params{1, 1, 1, 0.0};
    auto bs = Collect(EnumerateBSFBCPlusPlus, g, params);
    auto ss = Collect(EnumerateSSFBCPlusPlus, g, params);
    for (const auto& b : bs) {
      bool contained = false;
      for (const auto& s : ss) {
        bool upper_in = std::includes(s.upper.begin(), s.upper.end(),
                                      b.upper.begin(), b.upper.end());
        bool lower_in = std::includes(s.lower.begin(), s.lower.end(),
                                      b.lower.begin(), b.lower.end());
        if (upper_in && lower_in) {
          contained = true;
          break;
        }
      }
      EXPECT_TRUE(contained) << "seed=" << seed << " " << b.DebugString();
    }
  }
}

TEST(BFairBcem, EmittedBsfbcSatisfyDefinition) {
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5);
    FairBicliqueParams params{1, 1, 1, 0.0};
    CollectSink sink;
    EnumerateBSFBCPlusPlus(g, params, {}, sink.AsSink());
    for (const Biclique& b : sink.results()) {
      ASSERT_FALSE(b.upper.empty());
      ASSERT_FALSE(b.lower.empty());
      for (VertexId u : b.upper) {
        for (VertexId v : b.lower) {
          EXPECT_TRUE(g.HasEdge(u, v)) << b.DebugString();
        }
      }
      SizeVector us(g.NumAttrs(Side::kUpper), 0);
      for (VertexId u : b.upper) ++us[g.Attr(Side::kUpper, u)];
      SizeVector ls(g.NumAttrs(Side::kLower), 0);
      for (VertexId v : b.lower) ++ls[g.Attr(Side::kLower, v)];
      EXPECT_TRUE(IsFeasibleVector(us, params.UpperSpec())) << b.DebugString();
      EXPECT_TRUE(IsFeasibleVector(ls, params.LowerSpec())) << b.DebugString();
    }
  }
}

TEST(BFairBcem, NoBsfbcWhenUpperClassMissing) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
                               {0, 0}, {0, 1});
  FairBicliqueParams params{1, 1, 1, 0.0};
  EXPECT_TRUE(Collect(EnumerateBSFBC, g, params).empty());
}

TEST(BFairBcem, EmptyGraph) {
  BipartiteGraph g;
  FairBicliqueParams params{1, 1, 1, 0.0};
  CountSink sink;
  EnumStats stats = EnumerateBSFBC(g, params, {}, sink.AsSink());
  EXPECT_EQ(stats.num_results, 0u);
}

}  // namespace
}  // namespace fairbc
