// Tests for the proportion fair biclique models (PSSFBC / PBSFBC,
// Defs. 5-6), driven through the ++ engines with theta > 0
// (FairBCEMPro++ / BFairBCEMPro++).

#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::Collect;
using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

TEST(ProSsfbc, RatioConstraintTightensResults) {
  // Complete 2x6, lower classes (4,2): delta=2 allows (4,2) but theta=0.4
  // requires the minority share >= 0.4 -> cap majority at 3.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId v = 0; v < 6; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(2, 6, edges, {0, 1}, {0, 0, 0, 0, 1, 1});
  FairBicliqueParams plain{1, 2, 2, 0.0};
  FairBicliqueParams pro{1, 2, 2, 0.4};

  auto plain_results = Collect(EnumerateSSFBCPlusPlus, g, plain);
  ASSERT_EQ(plain_results.size(), 1u);  // the whole graph: (4,2) diff 2.
  EXPECT_EQ(plain_results[0].lower.size(), 6u);

  auto pro_results = Collect(EnumerateSSFBCPlusPlus, g, pro);
  // t* = (min(4, 2+2, floor(2*1.5)=3), 2) = (3,2): C(4,3) = 4 subsets.
  EXPECT_EQ(pro_results.size(), 4u);
  for (const auto& b : pro_results) {
    EXPECT_EQ(b.lower.size(), 5u);
  }
  EXPECT_EQ(pro_results, Canonicalize(BruteForceSSFBC(g, pro)));
}

TEST(ProSsfbc, ThetaHalfForcesExactBalance) {
  // theta = 0.5 degenerates to delta = 0 (paper Exp-7 observation).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    FairBicliqueParams pro{1, 1, 3, 0.5};
    FairBicliqueParams balanced{1, 1, 0, 0.0};
    EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, pro),
              Collect(EnumerateSSFBCPlusPlus, g, balanced))
        << "seed=" << seed;
  }
}

TEST(ProSsfbc, MatchesOracleAcrossThetas) {
  for (std::uint64_t seed = 20; seed < 40; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    for (double theta : {0.3, 0.4, 0.45}) {
      FairBicliqueParams params{1, 1, 2, theta};
      auto oracle = Canonicalize(BruteForceSSFBC(g, params));
      EXPECT_EQ(Collect(EnumerateSSFBCPlusPlus, g, params), oracle)
          << "seed=" << seed << " theta=" << theta;
      EXPECT_EQ(Collect(EnumerateSSFBC, g, params), oracle)
          << "seed=" << seed << " theta=" << theta;
    }
  }
}

TEST(ProBsfbc, MatchesOracleAcrossThetas) {
  for (std::uint64_t seed = 60; seed < 75; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 6, 0.55);
    for (double theta : {0.3, 0.4}) {
      FairBicliqueParams params{1, 1, 2, theta};
      auto oracle = Canonicalize(BruteForceBSFBC(g, params));
      EXPECT_EQ(Collect(EnumerateBSFBCPlusPlus, g, params), oracle)
          << "seed=" << seed << " theta=" << theta;
      EXPECT_EQ(Collect(EnumerateBSFBC, g, params), oracle)
          << "seed=" << seed << " theta=" << theta;
    }
  }
}

TEST(ProSsfbc, EmittedResultsRespectRatio) {
  for (std::uint64_t seed = 80; seed < 90; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 9, 0.45);
    FairBicliqueParams params{1, 1, 2, 0.4};
    CollectSink sink;
    EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
    for (const Biclique& b : sink.results()) {
      SizeVector sizes(g.NumAttrs(Side::kLower), 0);
      for (VertexId v : b.lower) ++sizes[g.Attr(Side::kLower, v)];
      for (auto s : sizes) {
        EXPECT_GE(static_cast<double>(s) + 1e-9,
                  0.4 * static_cast<double>(b.lower.size()))
            << b.DebugString();
      }
    }
  }
}

}  // namespace
}  // namespace fairbc
