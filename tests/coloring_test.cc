#include <gtest/gtest.h>

#include "core/coloring.h"
#include "core/two_hop_graph.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::RandomSmallGraph;

UnipartiteGraph MakeUnipartite(VertexId n,
                               const std::vector<std::pair<VertexId, VertexId>>&
                                   edges,
                               std::vector<AttrId> attrs, AttrId num_attrs = 2) {
  return UnipartiteGraph::FromEdges(n, edges, std::move(attrs), num_attrs);
}

TEST(GreedyColor, ProperOnTriangle) {
  UnipartiteGraph h = MakeUnipartite(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 0, 1});
  std::vector<char> alive(3, 1);
  Coloring c = GreedyColor(h, alive);
  EXPECT_EQ(c.num_colors, 3u);
  EXPECT_TRUE(IsProperColoring(h, alive, c));
}

TEST(GreedyColor, PathUsesTwoColors) {
  UnipartiteGraph h = MakeUnipartite(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 0, 1, 1});
  std::vector<char> alive(4, 1);
  Coloring c = GreedyColor(h, alive);
  EXPECT_EQ(c.num_colors, 2u);
  EXPECT_TRUE(IsProperColoring(h, alive, c));
}

TEST(GreedyColor, SkipsDeadVertices) {
  UnipartiteGraph h = MakeUnipartite(3, {{0, 1}, {1, 2}, {0, 2}}, {0, 0, 1});
  std::vector<char> alive{1, 0, 1};
  Coloring c = GreedyColor(h, alive);
  EXPECT_TRUE(IsProperColoring(h, alive, c));
  // Triangle minus one vertex is an edge -> 2 colors suffice.
  EXPECT_LE(c.num_colors, 2u);
}

TEST(GreedyColor, ProperOnRandomTwoHopGraphs) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 14, 0.4);
    SideMasks masks;
    masks.upper_alive.assign(g.NumUpper(), 1);
    masks.lower_alive.assign(g.NumLower(), 1);
    UnipartiteGraph h = Construct2HopGraph(g, Side::kLower, 1, masks);
    std::vector<char> alive(h.NumVertices(), 1);
    Coloring c = GreedyColor(h, alive);
    EXPECT_TRUE(IsProperColoring(h, alive, c)) << "seed=" << seed;
    // Greedy bound: at most max degree + 1 colors.
    VertexId max_deg = 0;
    for (VertexId v = 0; v < h.NumVertices(); ++v) {
      max_deg = std::max(max_deg, h.Degree(v));
    }
    EXPECT_LE(c.num_colors, max_deg + 1) << "seed=" << seed;
  }
}

TEST(GreedyColor, EmptyGraph) {
  UnipartiteGraph h;
  Coloring c = GreedyColor(h, {});
  EXPECT_EQ(c.num_colors, 0u);
}

TEST(GreedyColor, IsolatedVerticesShareColorZero) {
  UnipartiteGraph h = MakeUnipartite(3, {}, {0, 1, 0});
  std::vector<char> alive(3, 1);
  Coloring c = GreedyColor(h, alive);
  EXPECT_EQ(c.num_colors, 1u);
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(c.color[v], 0u);
}

}  // namespace
}  // namespace fairbc
