#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generators.h"
#include "graph/io.h"

namespace fairbc {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/fairbc_io_" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(IoTest, EdgeListRoundTrip) {
  std::string path = TempPath("edges.txt");
  WriteFile(path,
            "% comment line\n"
            "0 0\n"
            "0 1\n"
            "\n"
            "2 1\n");
  auto result = ReadEdgeList(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.NumUpper(), 3u);
  EXPECT_EQ(g.NumLower(), 2u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(2, 1));
}

TEST_F(IoTest, EdgeListMissingFile) {
  auto result = ReadEdgeList(TempPath("does_not_exist"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, EdgeListMalformed) {
  std::string path = TempPath("bad_edges.txt");
  WriteFile(path, "0 zero\n");
  auto result = ReadEdgeList(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput);
}

TEST_F(IoTest, EdgeListNegativeIds) {
  std::string path = TempPath("neg_edges.txt");
  WriteFile(path, "-1 2\n");
  auto result = ReadEdgeList(path);
  EXPECT_FALSE(result.ok());
}

TEST_F(IoTest, AttributedRoundTrip) {
  BipartiteGraph g = MakeUniformRandom(20, 15, 60, 2, /*seed=*/3);
  std::string path = TempPath("attr.fbg");
  ASSERT_TRUE(WriteAttributedGraph(g, path).ok());
  auto result = ReadAttributedGraph(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const BipartiteGraph& h = result.value();
  EXPECT_EQ(h.NumUpper(), g.NumUpper());
  EXPECT_EQ(h.NumLower(), g.NumLower());
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    EXPECT_EQ(h.Attr(Side::kUpper, u), g.Attr(Side::kUpper, u));
    auto a = g.Neighbors(Side::kUpper, u);
    auto b = h.Neighbors(Side::kUpper, u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    EXPECT_EQ(h.Attr(Side::kLower, v), g.Attr(Side::kLower, v));
  }
}

TEST_F(IoTest, AttributedMissingHeader) {
  std::string path = TempPath("no_header.fbg");
  WriteFile(path, "E 0 0\n");
  auto result = ReadAttributedGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput);
}

TEST_F(IoTest, AttributedBadVersion) {
  std::string path = TempPath("bad_version.fbg");
  WriteFile(path, "%fairbc 9 2 2 2 2\nE 0 0\n");
  auto result = ReadAttributedGraph(path);
  EXPECT_FALSE(result.ok());
}

TEST_F(IoTest, AttributedEdgeOutOfRange) {
  std::string path = TempPath("oob.fbg");
  WriteFile(path, "%fairbc 1 2 2 2 2\nE 0 5\n");
  auto result = ReadAttributedGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptInput);
}

TEST_F(IoTest, AttributedAttrOutOfDomain) {
  std::string path = TempPath("bad_attr.fbg");
  WriteFile(path, "%fairbc 1 2 2 2 2\nV 0 3\nE 0 0\n");
  auto result = ReadAttributedGraph(path);
  EXPECT_FALSE(result.ok());
}

TEST_F(IoTest, AttributedUnknownTag) {
  std::string path = TempPath("bad_tag.fbg");
  WriteFile(path, "%fairbc 1 2 2 2 2\nX 0 0\n");
  auto result = ReadAttributedGraph(path);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace fairbc
