#include <gtest/gtest.h>

#include "graph/generators.h"

namespace fairbc {
namespace {

TEST(UniformRandom, SizesAndValidity) {
  BipartiteGraph g = MakeUniformRandom(100, 80, 400, 2, 1);
  EXPECT_EQ(g.NumUpper(), 100u);
  EXPECT_EQ(g.NumLower(), 80u);
  EXPECT_GT(g.NumEdges(), 300u);
  EXPECT_LE(g.NumEdges(), 100u * 80u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(UniformRandom, Deterministic) {
  BipartiteGraph a = MakeUniformRandom(50, 50, 200, 2, 7);
  BipartiteGraph b = MakeUniformRandom(50, 50, 200, 2, 7);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId u = 0; u < a.NumUpper(); ++u) {
    auto na = a.Neighbors(Side::kUpper, u);
    auto nb = b.Neighbors(Side::kUpper, u);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
}

TEST(UniformRandom, AttributesWithinDomain) {
  BipartiteGraph g = MakeUniformRandom(60, 60, 150, 3, 2);
  EXPECT_EQ(g.NumAttrs(Side::kUpper), 3u);
  auto counts = g.AttrCounts(Side::kUpper);
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 60u);
  // With 60 draws over 3 classes, each class should be hit.
  for (auto c : counts) EXPECT_GT(c, 0u);
}

TEST(UniformRandom, CapsAtCompleteGraph) {
  BipartiteGraph g = MakeUniformRandom(5, 5, 1000, 2, 3);
  EXPECT_LE(g.NumEdges(), 25u);
}

TEST(PowerLaw, HeavyTailedDegrees) {
  BipartiteGraph g = MakePowerLaw(2000, 2000, 10000, 2.2, 2, 11);
  EXPECT_TRUE(g.Validate().ok());
  VertexId max_deg = 0;
  std::uint64_t degree_sum = 0;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    max_deg = std::max(max_deg, g.Degree(Side::kUpper, u));
    degree_sum += g.Degree(Side::kUpper, u);
  }
  double mean = static_cast<double>(degree_sum) / g.NumUpper();
  // Heavy tail: the hub degree dwarfs the mean.
  EXPECT_GT(max_deg, 10 * mean);
}

TEST(Affiliation, PlantsBicliqueStructure) {
  AffiliationConfig config;
  config.num_upper = 200;
  config.num_lower = 200;
  config.num_communities = 12;
  config.noise_fraction = 0.1;
  config.seed = 5;
  BipartiteGraph g = MakeAffiliation(config);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_GT(g.NumEdges(), 100u);
}

TEST(Affiliation, Deterministic) {
  AffiliationConfig config;
  config.seed = 77;
  BipartiteGraph a = MakeAffiliation(config);
  BipartiteGraph b = MakeAffiliation(config);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

TEST(SampleEdges, FractionZeroAndOne) {
  BipartiteGraph g = MakeUniformRandom(40, 40, 200, 2, 13);
  BipartiteGraph none = SampleEdges(g, 0.0, 1);
  BipartiteGraph all = SampleEdges(g, 1.0, 1);
  EXPECT_EQ(none.NumEdges(), 0u);
  EXPECT_EQ(all.NumEdges(), g.NumEdges());
  // Vertex counts and attributes preserved.
  EXPECT_EQ(none.NumUpper(), g.NumUpper());
  EXPECT_EQ(all.NumLower(), g.NumLower());
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    EXPECT_EQ(all.Attr(Side::kLower, v), g.Attr(Side::kLower, v));
  }
}

TEST(SampleEdges, FractionRoughlyRespected) {
  BipartiteGraph g = MakeUniformRandom(100, 100, 2000, 2, 17);
  BipartiteGraph half = SampleEdges(g, 0.5, 3);
  double ratio =
      static_cast<double>(half.NumEdges()) / static_cast<double>(g.NumEdges());
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 0.6);
}

}  // namespace
}  // namespace fairbc
