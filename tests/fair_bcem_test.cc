#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/pipeline.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::Collect;
using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::PaperExampleGraph;
using ::fairbc::testing::RandomSmallGraph;

TEST(FairBcem, PlantedFairBicliqueFound) {
  BipartiteGraph g = PaperExampleGraph();
  FairBicliqueParams params{1, 2, 1, 0.0};
  auto results = Collect(EnumerateSSFBC, g, params);
  ASSERT_FALSE(results.empty());
  // The planted biclique {u2,u3} x {v1,v3,v5,v8} must appear.
  Biclique planted;
  planted.upper = {2, 3};
  planted.lower = {1, 3, 5, 8};
  EXPECT_TRUE(std::find(results.begin(), results.end(), planted) !=
              results.end());
  // And it matches the oracle.
  EXPECT_EQ(results, Canonicalize(BruteForceSSFBC(g, params)));
}

TEST(FairBcem, NoFairBicliqueWhenClassMissing) {
  // All lower vertices in class 0: beta >= 1 on class 1 can't be met.
  BipartiteGraph g = MakeGraph(2, 3, {{0, 0}, {0, 1}, {1, 1}, {1, 2}},
                               {0, 1}, {0, 0, 0});
  FairBicliqueParams params{1, 1, 2, 0.0};
  EXPECT_TRUE(Collect(EnumerateSSFBC, g, params).empty());
  EXPECT_TRUE(Collect(EnumerateSSFBCPlusPlus, g, params).empty());
}

TEST(FairBcem, DeltaZeroForcesExactBalance) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId v = 0; v < 5; ++v) edges.emplace_back(u, v);
  }
  // Lower classes: 3 of class 0, 2 of class 1.
  BipartiteGraph g = MakeGraph(2, 5, edges, {0, 1}, {0, 0, 0, 1, 1});
  FairBicliqueParams params{1, 1, 0, 0.0};
  auto results = Collect(EnumerateSSFBC, g, params);
  // Maximal fair subsets pick 2 of the 3 class-0 vertices: C(3,2)=3.
  EXPECT_EQ(results.size(), 3u);
  for (const auto& b : results) {
    EXPECT_EQ(b.lower.size(), 4u);
  }
  EXPECT_EQ(results, Canonicalize(BruteForceSSFBC(g, params)));
}

TEST(FairBcem, AlphaFiltersSmallUpperSides) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}}, {0, 1}, {0, 1});
  // alpha=2: only bicliques whose common neighborhood has both uppers.
  FairBicliqueParams params{2, 1, 1, 0.0};
  auto results = Collect(EnumerateSSFBC, g, params);
  EXPECT_EQ(results, Canonicalize(BruteForceSSFBC(g, params)));
  for (const auto& b : results) EXPECT_GE(b.upper.size(), 2u);
}

TEST(FairBcem, SearchOptionAblationsStayCorrect) {
  // Each pruning observation can be disabled independently without
  // changing the output (only the search size).
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.5);
    FairBicliqueParams params{1, 1, 1, 0.0};
    auto oracle = Canonicalize(BruteForceSSFBC(g, params));
    for (int off_bit = 0; off_bit < 5; ++off_bit) {
      FairBcemSearchOptions search;
      if (off_bit == 0) search.prune_small_l = false;
      if (off_bit == 1) search.prune_excluded_full = false;
      if (off_bit == 2) search.prune_class_counts = false;
      if (off_bit == 3) search.absorb_full_candidates = false;
      if (off_bit == 4) search.filter_candidates_alpha = false;
      CollectSink sink;
      EnumerateSSFBCWithSearchOptions(g, params, {}, search, sink.AsSink());
      EXPECT_EQ(Canonicalize(sink.results()), oracle)
          << "seed=" << seed << " off_bit=" << off_bit;
    }
  }
}

TEST(FairBcem, NodeBudgetReportsExhaustion) {
  BipartiteGraph g = RandomSmallGraph(3, 14, 0.5);
  FairBicliqueParams params{1, 1, 2, 0.0};
  EnumOptions options;
  options.node_budget = 2;
  CountSink sink;
  EnumStats stats = EnumerateSSFBC(g, params, options, sink.AsSink());
  EXPECT_TRUE(stats.budget_exhausted);
}

TEST(FairBcem, StatsReportRemainingVertices) {
  BipartiteGraph g = RandomSmallGraph(4, 10, 0.4);
  FairBicliqueParams params{2, 2, 1, 0.0};
  CountSink sink;
  EnumStats stats = EnumerateSSFBC(g, params, {}, sink.AsSink());
  EXPECT_LE(stats.remaining_upper, g.NumUpper());
  EXPECT_LE(stats.remaining_lower, g.NumLower());
  EXPECT_EQ(stats.num_results, sink.count());
  EXPECT_FALSE(stats.DebugString().empty());
}

TEST(FairBcemPp, CountsMaximalBicliquesVisited) {
  BipartiteGraph g = RandomSmallGraph(8, 10, 0.4);
  FairBicliqueParams params{1, 1, 1, 0.0};
  CountSink sink;
  EnumStats stats = EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
  EXPECT_GE(stats.maximal_bicliques_visited, 0u);
}

TEST(FairBcem, EmptyGraph) {
  BipartiteGraph g;
  FairBicliqueParams params{1, 1, 1, 0.0};
  CountSink sink;
  EnumStats stats = EnumerateSSFBC(g, params, {}, sink.AsSink());
  EXPECT_EQ(stats.num_results, 0u);
}

}  // namespace
}  // namespace fairbc
