#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "graph/builder.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;

TEST(Builder, BuildsAndDedupes) {
  BipartiteGraphBuilder builder(3, 4);
  builder.AddEdge(0, 1);
  builder.AddEdge(0, 1);  // duplicate
  builder.AddEdge(2, 3);
  builder.AddEdge(1, 0);
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  const BipartiteGraph& g = result.value();
  EXPECT_EQ(g.NumUpper(), 3u);
  EXPECT_EQ(g.NumLower(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.Validate().ok());
}

TEST(Builder, GrowsFromEdges) {
  BipartiteGraphBuilder builder;
  builder.AddEdge(5, 7);
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumUpper(), 6u);
  EXPECT_EQ(result.value().NumLower(), 8u);
}

TEST(Builder, RejectsAttrOutOfDomain) {
  BipartiteGraphBuilder builder(2, 2);
  builder.AddEdge(0, 0);
  builder.SetNumAttrs(Side::kLower, 2);
  builder.SetAttr(Side::kLower, 1, 5);  // domain is {0,1}
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Builder, RejectsWrongAttrVectorSize) {
  BipartiteGraphBuilder builder(3, 2);
  builder.AddEdge(0, 0);
  builder.SetAttrs(Side::kLower, {0});  // 1 != 2... grows num_lower? no: 1 < 2
  auto result = builder.Build();
  EXPECT_FALSE(result.ok());
}

TEST(Graph, NeighborsSortedBothDirections) {
  BipartiteGraph g = MakeGraph(3, 3,
                               {{0, 2}, {0, 0}, {1, 1}, {2, 0}, {2, 2}, {0, 1}},
                               {0, 1, 0}, {1, 0, 1});
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    auto nbrs = g.Neighbors(Side::kUpper, u);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    auto nbrs = g.Neighbors(Side::kLower, v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_LT(nbrs[i - 1], nbrs[i]);
    }
  }
  EXPECT_TRUE(g.Validate().ok());
}

TEST(Graph, DegreesAndAttrCounts) {
  BipartiteGraph g = MakeGraph(2, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 2}},
                               {0, 1}, {0, 0, 1});
  EXPECT_EQ(g.Degree(Side::kUpper, 0), 3u);
  EXPECT_EQ(g.Degree(Side::kUpper, 1), 1u);
  EXPECT_EQ(g.Degree(Side::kLower, 2), 2u);
  auto lower_counts = g.AttrCounts(Side::kLower);
  ASSERT_EQ(lower_counts.size(), 2u);
  EXPECT_EQ(lower_counts[0], 2u);
  EXPECT_EQ(lower_counts[1], 1u);
  EXPECT_DOUBLE_EQ(g.Density(), 4.0 / 6.0);
  EXPECT_GT(g.MemoryBytes(), 0u);
  EXPECT_NE(g.DebugString().find("|E|=4"), std::string::npos);
}

TEST(Graph, EmptyGraphIsValid) {
  BipartiteGraphBuilder builder(0, 0);
  auto result = builder.Build();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().Validate().ok());
  EXPECT_EQ(result.value().Density(), 0.0);
}

TEST(InducedSubgraph, CompactsAndRemaps) {
  BipartiteGraph g = MakeGraph(3, 4,
                               {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 3}},
                               {0, 1, 0}, {0, 1, 0, 1});
  SideMasks masks;
  masks.upper_alive = {1, 0, 1};
  masks.lower_alive = {0, 1, 1, 1};
  IdMaps maps;
  BipartiteGraph sub = InducedSubgraph(g, masks, &maps);
  EXPECT_EQ(sub.NumUpper(), 2u);
  EXPECT_EQ(sub.NumLower(), 3u);
  EXPECT_TRUE(sub.Validate().ok());
  // u0 keeps only edge to v1 (alive); v0 dropped.
  ASSERT_EQ(maps.upper_to_parent.size(), 2u);
  EXPECT_EQ(maps.upper_to_parent[0], 0u);
  EXPECT_EQ(maps.upper_to_parent[1], 2u);
  EXPECT_EQ(maps.lower_to_parent[0], 1u);
  // Edge (0,1) in parent becomes (0,0) in sub.
  EXPECT_TRUE(sub.HasEdge(0, 0));
  // Attributes carried over.
  EXPECT_EQ(sub.Attr(Side::kUpper, 1), g.Attr(Side::kUpper, 2));
  EXPECT_EQ(sub.Attr(Side::kLower, 0), g.Attr(Side::kLower, 1));
}

TEST(InducedSubgraph, AllAliveIsIdentity) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {1, 1}, {0, 1}}, {0, 1}, {1, 0});
  SideMasks masks;
  masks.upper_alive = {1, 1};
  masks.lower_alive = {1, 1};
  IdMaps maps;
  BipartiteGraph sub = InducedSubgraph(g, masks, &maps);
  EXPECT_EQ(sub.NumEdges(), g.NumEdges());
  EXPECT_TRUE(sub.HasEdge(0, 0));
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_TRUE(sub.HasEdge(1, 1));
}

TEST(SideMasks, CountAlive) {
  SideMasks masks;
  masks.upper_alive = {1, 0, 1, 1};
  masks.lower_alive = {0, 0};
  EXPECT_EQ(masks.CountAlive(Side::kUpper), 3u);
  EXPECT_EQ(masks.CountAlive(Side::kLower), 0u);
}

}  // namespace
}  // namespace fairbc
