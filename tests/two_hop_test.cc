#include <gtest/gtest.h>

#include <algorithm>

#include "core/intersect.h"
#include "core/reduction_context.h"
#include "core/two_hop_graph.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

SideMasks AllAlive(const BipartiteGraph& g) {
  SideMasks masks;
  masks.upper_alive.assign(g.NumUpper(), 1);
  masks.lower_alive.assign(g.NumLower(), 1);
  return masks;
}

// Naive O(n^2) reference: count common alive neighbors directly.
UnipartiteGraph NaiveTwoHop(const BipartiteGraph& g, std::uint32_t alpha,
                            const SideMasks& masks, bool per_attr) {
  std::vector<AttrId> attrs(g.NumLower());
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    attrs[v] = g.Attr(Side::kLower, v);
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  const AttrId au = g.NumAttrs(Side::kUpper);
  for (VertexId a = 0; a < g.NumLower(); ++a) {
    if (!masks.lower_alive[a]) continue;
    for (VertexId b = a + 1; b < g.NumLower(); ++b) {
      if (!masks.lower_alive[b]) continue;
      SizeVector common(au, 0);
      for (VertexId u : g.Neighbors(Side::kLower, a)) {
        if (!masks.upper_alive[u]) continue;
        auto nb = g.Neighbors(Side::kLower, b);
        if (std::binary_search(nb.begin(), nb.end(), u)) {
          ++common[g.Attr(Side::kUpper, u)];
        }
      }
      bool connect;
      if (per_attr) {
        connect = true;
        for (auto c : common) connect &= (c >= alpha);
      } else {
        std::uint32_t total = 0;
        for (auto c : common) total += c;
        connect = total >= alpha;
      }
      if (connect) edges.emplace_back(a, b);
    }
  }
  return UnipartiteGraph::FromEdges(g.NumLower(), edges, std::move(attrs),
                                    g.NumAttrs(Side::kLower));
}

TEST(TwoHop, SimpleSharedNeighbors) {
  // v0 and v1 share u0,u1; v2 shares only u1 with them.
  BipartiteGraph g = MakeGraph(2, 3,
                               {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2}},
                               {0, 1}, {0, 1, 0});
  UnipartiteGraph h = Construct2HopGraph(g, Side::kLower, 2, AllAlive(g));
  const auto adj = h.AdjacencyLists();
  EXPECT_EQ(adj[0], (std::vector<VertexId>{1}));
  EXPECT_EQ(adj[1], (std::vector<VertexId>{0}));
  EXPECT_TRUE(adj[2].empty());
  EXPECT_EQ(h.NumEdges(), 1u);
}

TEST(TwoHop, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 10, 0.4);
    SideMasks masks = AllAlive(g);
    // Kill a few vertices to exercise mask handling.
    if (g.NumUpper() > 2) masks.upper_alive[0] = 0;
    if (g.NumLower() > 2) masks.lower_alive[1] = 0;
    for (std::uint32_t alpha : {1u, 2u, 3u}) {
      UnipartiteGraph fast = Construct2HopGraph(g, Side::kLower, alpha, masks);
      UnipartiteGraph slow = NaiveTwoHop(g, alpha, masks, false);
      EXPECT_EQ(fast, slow) << "seed=" << seed << " alpha=" << alpha;
    }
  }
}

TEST(BiTwoHop, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 50; seed < 75; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 10, 0.45);
    SideMasks masks = AllAlive(g);
    for (std::uint32_t alpha : {1u, 2u}) {
      UnipartiteGraph fast = BiConstruct2HopGraph(g, Side::kLower, alpha, masks);
      UnipartiteGraph slow = NaiveTwoHop(g, alpha, masks, true);
      EXPECT_EQ(fast, slow) << "seed=" << seed << " alpha=" << alpha;
    }
  }
}

TEST(BiTwoHop, RequiresCommonNeighborsPerClass) {
  // v0,v1 share two class-0 uppers but no class-1 upper.
  BipartiteGraph g = MakeGraph(3, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}},
                               {0, 0, 1}, {0, 1});
  UnipartiteGraph h = BiConstruct2HopGraph(g, Side::kLower, 1, AllAlive(g));
  EXPECT_TRUE(h.Neighbors(0).empty());
  EXPECT_TRUE(h.Neighbors(1).empty());
}

TEST(TwoHop, UpperSideConstruction) {
  // Build the 2-hop graph on the upper side (used by BCFCore).
  BipartiteGraph g = MakeGraph(3, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 1}},
                               {0, 1, 0}, {0, 1});
  UnipartiteGraph h = Construct2HopGraph(g, Side::kUpper, 2, AllAlive(g));
  // u0,u1 share v0,v1; u2 shares only v1.
  const auto adj = h.AdjacencyLists();
  EXPECT_EQ(adj[0], (std::vector<VertexId>{1}));
  EXPECT_EQ(adj[1], (std::vector<VertexId>{0}));
  EXPECT_TRUE(adj[2].empty());
  EXPECT_EQ(h.num_attrs, g.NumAttrs(Side::kUpper));
}

TEST(TwoHop, MemoryBytesNonZero) {
  BipartiteGraph g = RandomSmallGraph(7, 10, 0.5);
  UnipartiteGraph h = Construct2HopGraph(g, Side::kLower, 1, AllAlive(g));
  EXPECT_GT(h.MemoryBytes(), 0u);
}

TEST(TwoHop, MemoryBytesCoversCsrArraysExactly) {
  BipartiteGraph g = RandomSmallGraph(7, 10, 0.5);
  UnipartiteGraph h = Construct2HopGraph(g, Side::kLower, 1, AllAlive(g));
  // Independently computed from the element counts: n+1 offsets, one
  // attr per vertex, each undirected edge stored twice. Construction is
  // exact-fit, so the report must match with no per-vector bookkeeping
  // approximations or overhead terms.
  const std::size_t n = h.NumVertices();
  EXPECT_EQ(h.MemoryBytes(), (n + 1) * sizeof(EdgeIndex) +
                                 2 * h.NumEdges() * sizeof(VertexId) +
                                 n * sizeof(AttrId));
}

// The sharded parallel construction must produce byte-identical CSR
// output (offsets, neighbors, attrs) at every thread count, on both the
// single-side and bi-side variants.
TEST(TwoHop, ParallelConstructionByteIdentical) {
  std::vector<BipartiteGraph> graphs;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    graphs.push_back(RandomSmallGraph(seed, 12, 0.4));
  }
  graphs.push_back(MakeUniformRandom(300, 300, 2400, 2, 33));
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const BipartiteGraph& g = graphs[i];
    SideMasks masks = AllAlive(g);
    if (g.NumUpper() > 2) masks.upper_alive[0] = 0;
    if (g.NumLower() > 2) masks.lower_alive[1] = 0;
    for (std::uint32_t alpha : {1u, 2u}) {
      const UnipartiteGraph serial =
          Construct2HopGraph(g, Side::kLower, alpha, masks);
      const UnipartiteGraph serial_bi =
          BiConstruct2HopGraph(g, Side::kLower, alpha, masks);
      for (unsigned threads : {2u, 8u}) {
        ReductionContext ctx(threads);
        EXPECT_EQ(serial, Construct2HopGraph(g, Side::kLower, alpha, masks,
                                             &ctx))
            << "graph=" << i << " alpha=" << alpha << " threads=" << threads;
        EXPECT_EQ(serial_bi, BiConstruct2HopGraph(g, Side::kLower, alpha,
                                                  masks, &ctx))
            << "graph=" << i << " alpha=" << alpha << " threads=" << threads;
      }
    }
  }
}

TEST(Intersect, Helpers) {
  std::vector<VertexId> a{1, 3, 5, 7};
  std::vector<VertexId> b{2, 3, 5, 8};
  EXPECT_EQ(IntersectSize(a, b), 2u);
  EXPECT_EQ(Intersect(a, b), (std::vector<VertexId>{3, 5}));
  EXPECT_EQ(IntersectSize(a, {}), 0u);
  EXPECT_TRUE(Intersect({}, b).empty());
}

}  // namespace
}  // namespace fairbc
