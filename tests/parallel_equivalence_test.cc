// Serial-vs-parallel equivalence of the enumeration engines: for every
// engine and every num_threads in {1, 2, 8} the canonicalized result set
// must be identical (the root-level fan-out partitions the search tree,
// it must never change what is found). 8 threads on small graphs also
// exercises the "more workers than root branches" and work-stealing
// paths.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::RandomSmallGraph;

using PipelineFn = EnumStats (*)(const BipartiteGraph&,
                                 const FairBicliqueParams&, const EnumOptions&,
                                 const BicliqueSink&);

struct NamedEngine {
  const char* name;
  PipelineFn fn;
};

const NamedEngine kEngines[] = {
    {"SSFBC", EnumerateSSFBC},
    {"SSFBC++", EnumerateSSFBCPlusPlus},
    {"BSFBC", EnumerateBSFBC},
    {"BSFBC++", EnumerateBSFBCPlusPlus},
};

BipartiteGraph AffiliationGraph(std::uint64_t seed) {
  AffiliationConfig config;
  config.num_upper = 120;
  config.num_lower = 120;
  config.num_communities = 8;
  config.seed = seed;
  return MakeAffiliation(config);
}

void ExpectEquivalentAcrossThreads(const BipartiteGraph& g,
                                   const FairBicliqueParams& params,
                                   const std::string& label) {
  for (const NamedEngine& engine : kEngines) {
    std::vector<Biclique> serial;
    std::uint64_t serial_count = 0;
    for (unsigned threads : {1u, 2u, 8u}) {
      EnumOptions options;
      options.num_threads = threads;
      CollectSink sink;
      EnumStats stats = engine.fn(g, params, options, sink.AsSink());
      std::vector<Biclique> results = Canonicalize(sink.results());
      EXPECT_EQ(stats.num_results, results.size())
          << label << " " << engine.name << " threads=" << threads;
      if (threads == 1) {
        serial = std::move(results);
        serial_count = stats.num_results;
        continue;
      }
      EXPECT_EQ(results, serial)
          << label << " " << engine.name << " threads=" << threads;
      EXPECT_EQ(stats.num_results, serial_count)
          << label << " " << engine.name << " threads=" << threads;
      EXPECT_FALSE(stats.budget_exhausted);
    }
  }
}

TEST(ParallelEquivalence, RandomSmallGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 10, 0.45);
    ExpectEquivalentAcrossThreads(g, FairBicliqueParams{1, 1, 1, 0.0},
                                  "random seed=" + std::to_string(seed));
  }
}

TEST(ParallelEquivalence, AffiliationGraphs) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    BipartiteGraph g = AffiliationGraph(seed);
    ExpectEquivalentAcrossThreads(g, FairBicliqueParams{2, 2, 1, 0.0},
                                  "affiliation seed=" + std::to_string(seed));
  }
}

TEST(ParallelEquivalence, ProportionalModel) {
  BipartiteGraph g = AffiliationGraph(3);
  ExpectEquivalentAcrossThreads(g, FairBicliqueParams{2, 2, 2, 0.3},
                                "proportional");
}

TEST(ParallelEquivalence, NaiveEnginesToo) {
  BipartiteGraph g = RandomSmallGraph(7, 8, 0.5);
  FairBicliqueParams params{1, 1, 1, 0.0};
  for (PipelineFn fn : {EnumerateSSFBCNaive, EnumerateBSFBCNaive}) {
    CollectSink serial_sink;
    fn(g, params, {}, serial_sink.AsSink());
    EnumOptions parallel;
    parallel.num_threads = 4;
    CollectSink parallel_sink;
    fn(g, params, parallel, parallel_sink.AsSink());
    EXPECT_EQ(Canonicalize(parallel_sink.results()),
              Canonicalize(serial_sink.results()));
  }
}

TEST(ParallelEquivalence, ZeroMeansHardwareConcurrency) {
  BipartiteGraph g = RandomSmallGraph(11, 9, 0.4);
  FairBicliqueParams params{1, 1, 1, 0.0};
  auto serial = testing::Collect(EnumerateSSFBCPlusPlus, g, params);
  EnumOptions options;
  options.num_threads = 0;  // auto-detect.
  CollectSink sink;
  EnumerateSSFBCPlusPlus(g, params, options, sink.AsSink());
  EXPECT_EQ(Canonicalize(sink.results()), serial);
}

TEST(ParallelEquivalence, NodeBudgetStopsParallelRun) {
  BipartiteGraph g = AffiliationGraph(4);
  FairBicliqueParams params{1, 1, 2, 0.0};
  EnumOptions options;
  options.num_threads = 4;
  options.node_budget = 5;
  CountSink sink;
  EnumStats stats = EnumerateSSFBC(g, params, options, sink.AsSink());
  EXPECT_TRUE(stats.budget_exhausted);
  // The budget is shared: workers may each account the node that trips
  // the limit, but the overshoot is bounded by the worker count.
  EXPECT_LE(stats.search_nodes, options.node_budget + 4);
}

TEST(ParallelEquivalence, SinkAbortStopsAllWorkers) {
  BipartiteGraph g = AffiliationGraph(5);
  FairBicliqueParams params{1, 1, 2, 0.0};
  EnumOptions options;
  options.num_threads = 4;
  std::atomic<std::uint64_t> seen{0};
  EnumStats stats = EnumerateSSFBC(g, params, options, [&](const Biclique&) {
    return seen.fetch_add(1, std::memory_order_relaxed) + 1 < 10;
  });
  EXPECT_FALSE(stats.budget_exhausted);  // abort is not budget exhaustion.
  // Every worker stops promptly after the abort latch; a few in-flight
  // emissions may still land.
  EXPECT_LE(seen.load(), 10u + 4u);
  EXPECT_GE(seen.load(), 10u);
}

}  // namespace
}  // namespace fairbc
