#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "bench_util/datasets.h"
#include "bench_util/sweep.h"
#include "bench_util/table.h"

namespace fairbc {
namespace {

TEST(Datasets, FiveStandardSpecs) {
  auto specs = StandardDatasets(1.0);
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "youtube");
  EXPECT_EQ(specs[4].name, "dblp");
  // Relative scale ordering mirrors Table I: dblp largest.
  EXPECT_GT(specs[4].config.num_lower, specs[0].config.num_lower);
}

TEST(Datasets, ScaleShrinksGraphs) {
  auto big = StandardDatasets(1.0);
  auto small = StandardDatasets(0.1);
  for (std::size_t i = 0; i < big.size(); ++i) {
    EXPECT_LE(small[i].config.num_upper, big[i].config.num_upper);
    EXPECT_LE(small[i].config.num_communities, big[i].config.num_communities);
  }
}

TEST(Datasets, LoadDatasetByNameIsDeterministic) {
  setenv("FAIRBC_SCALE", "0.05", 1);
  NamedGraph a = LoadDataset("youtube");
  NamedGraph b = LoadDataset("YOUTUBE");
  unsetenv("FAIRBC_SCALE");
  EXPECT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
  EXPECT_EQ(a.spec.name, "youtube");
  EXPECT_TRUE(a.graph.Validate().ok());
}

TEST(Datasets, EnvScaleParsing) {
  setenv("FAIRBC_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 0.25);
  setenv("FAIRBC_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
  unsetenv("FAIRBC_SCALE");
  EXPECT_DOUBLE_EQ(EnvScale(), 1.0);
}

TEST(Table, AlignsColumns) {
  TextTable table({"alg", "time"});
  table.AddRow({"FairBCEM", "1.0"});
  table.AddRow({"FairBCEM++", "0.01"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("FairBCEM++"), std::string::npos);
  EXPECT_NE(out.find("| alg"), std::string::npos);
  // Header, separator, two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TextTable::Num(42), "42");
  EXPECT_EQ(TextTable::Seconds(1.5), "1.500");
  EXPECT_EQ(TextTable::Seconds(0.5, /*inf=*/true), "INF");
  EXPECT_EQ(TextTable::Double(3.14159, 2), "3.14");
}

TEST(Sweep, RunCountingProducesConsistentCounts) {
  setenv("FAIRBC_SCALE", "0.05", 1);
  NamedGraph data = LoadDataset("youtube");
  unsetenv("FAIRBC_SCALE");
  EnumOptions options;
  options.time_budget_seconds = 10.0;
  TimedRun fast = RunCounting(AlgoFairBCEMpp(), data.graph,
                              data.spec.ss_defaults, options);
  TimedRun slow = RunCounting(AlgoFairBCEM(), data.graph,
                              data.spec.ss_defaults, options);
  EXPECT_FALSE(fast.timed_out);
  EXPECT_FALSE(slow.timed_out);
  EXPECT_EQ(fast.count, slow.count);
  EXPECT_GE(fast.seconds, 0.0);
}

TEST(Sweep, AlgorithmNames) {
  EXPECT_EQ(AlgoNSF().name, "NSF");
  EXPECT_EQ(AlgoFairBCEM().name, "FairBCEM");
  EXPECT_EQ(AlgoFairBCEMpp().name, "FairBCEM++");
  EXPECT_EQ(AlgoBNSF().name, "BNSF");
  EXPECT_EQ(AlgoBFairBCEM().name, "BFairBCEM");
  EXPECT_EQ(AlgoBFairBCEMpp().name, "BFairBCEM++");
}

TEST(Sweep, TimeBudgetEnv) {
  setenv("FAIRBC_TIME_BUDGET", "5.5", 1);
  EXPECT_DOUBLE_EQ(BenchTimeBudget(), 5.5);
  unsetenv("FAIRBC_TIME_BUDGET");
  EXPECT_DOUBLE_EQ(BenchTimeBudget(), 8.0);
}

}  // namespace
}  // namespace fairbc
