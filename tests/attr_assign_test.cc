#include <gtest/gtest.h>

#include "graph/attr_assign.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;

TEST(ReassignAttrs, RoundRobinBalanced) {
  BipartiteGraph g = MakeUniformRandom(10, 9, 30, 1, 3);
  BipartiteGraph h =
      ReassignAttrs(g, Side::kLower, AttrAssignment::kRoundRobin, 3, 0);
  EXPECT_EQ(h.NumAttrs(Side::kLower), 3u);
  auto counts = h.AttrCounts(Side::kLower);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 3u);
  // Structure untouched.
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  // Other side untouched.
  EXPECT_EQ(h.NumAttrs(Side::kUpper), g.NumAttrs(Side::kUpper));
}

TEST(ReassignAttrs, ByDegreePutsHubsInClassZero) {
  // v0 has degree 3, v1 degree 2, v2 degree 1, v3 degree 0.
  BipartiteGraph g = MakeGraph(3, 4,
                               {{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {0, 2}},
                               {0, 0, 0}, {0, 0, 0, 0});
  BipartiteGraph h =
      ReassignAttrs(g, Side::kLower, AttrAssignment::kByDegree, 2, 0);
  EXPECT_EQ(h.Attr(Side::kLower, 0), 0u);  // top degree -> "popular".
  EXPECT_EQ(h.Attr(Side::kLower, 1), 0u);
  EXPECT_EQ(h.Attr(Side::kLower, 2), 1u);
  EXPECT_EQ(h.Attr(Side::kLower, 3), 1u);
}

TEST(ReassignAttrs, UniformRandomDeterministicPerSeed) {
  BipartiteGraph g = MakeUniformRandom(30, 30, 100, 1, 5);
  BipartiteGraph a =
      ReassignAttrs(g, Side::kUpper, AttrAssignment::kUniformRandom, 2, 11);
  BipartiteGraph b =
      ReassignAttrs(g, Side::kUpper, AttrAssignment::kUniformRandom, 2, 11);
  BipartiteGraph c =
      ReassignAttrs(g, Side::kUpper, AttrAssignment::kUniformRandom, 2, 12);
  bool all_equal = true;
  bool differs_from_c = false;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    all_equal &= a.Attr(Side::kUpper, u) == b.Attr(Side::kUpper, u);
    differs_from_c |= a.Attr(Side::kUpper, u) != c.Attr(Side::kUpper, u);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(differs_from_c);
}

TEST(ReassignAttrs, PreservesAdjacency) {
  BipartiteGraph g = MakeUniformRandom(20, 20, 80, 2, 8);
  BipartiteGraph h =
      ReassignAttrs(g, Side::kLower, AttrAssignment::kByDegree, 2, 0);
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    auto a = g.Neighbors(Side::kUpper, u);
    auto b = h.Neighbors(Side::kUpper, u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  EXPECT_TRUE(h.Validate().ok());
}

}  // namespace
}  // namespace fairbc
