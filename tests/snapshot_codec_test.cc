// Compressed snapshot (v3) codec tests: varint/Rice block codec units,
// byte-identical round-trip properties across every generator family and
// attribute skew at multiple block sizes (including degenerate ones),
// lazy per-range decode equivalence against the in-memory CSR, and
// wire_test-style seeded fuzz loops over the block decoder and whole v3
// files. The ASan/UBSan and TSan CI jobs run this binary; hostile bytes
// must always come back as Status, never UB, OOM or a wrong-length
// "success".

#include "graph/varint_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "graph/attr_assign.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/snapshot.h"
#include "test_util.h"

namespace fairbc {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void ExpectSpansEqual(std::span<const T> a, std::span<const T> b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::vector<T>(a.begin(), a.end()),
            std::vector<T>(b.begin(), b.end()));
}

void ExpectByteIdentical(const BipartiteGraph& a, const BipartiteGraph& b) {
  EXPECT_EQ(a.NumUpper(), b.NumUpper());
  EXPECT_EQ(a.NumLower(), b.NumLower());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (Side side : {Side::kUpper, Side::kLower}) {
    EXPECT_EQ(a.NumAttrs(side), b.NumAttrs(side));
    ExpectSpansEqual(a.Offsets(side), b.Offsets(side));
    ExpectSpansEqual(a.NeighborArray(side), b.NeighborArray(side));
    ExpectSpansEqual(a.AttrArray(side), b.AttrArray(side));
  }
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
}

// ---------------------------------------------------------------------------
// Codec units.
// ---------------------------------------------------------------------------

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,       1,        127,       128,
                                  16383,   16384,    (1u << 21) - 1,
                                  1u << 21, ~std::uint64_t{0} >> 1,
                                  ~std::uint64_t{0}};
  for (std::uint64_t v : values) {
    std::string bytes;
    AppendVarint(&bytes, v);
    EXPECT_EQ(bytes.size(), VarintSize(v));
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    const unsigned char* end = p + bytes.size();
    std::uint64_t decoded = 0;
    ASSERT_TRUE(ReadVarint(&p, end, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(p, end);
  }
}

TEST(VarintTest, RejectsTruncationAndOverlongEncodings) {
  std::string bytes;
  AppendVarint(&bytes, ~std::uint64_t{0});
  ASSERT_EQ(bytes.size(), 10u);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
    std::uint64_t v = 0;
    EXPECT_FALSE(ReadVarint(&p, p + cut, &v)) << cut;
  }
  // An 11-byte chain of continuation bytes can never be a u64.
  const std::string overlong(11, '\x80');
  const auto* p = reinterpret_cast<const unsigned char*>(overlong.data());
  std::uint64_t v = 0;
  EXPECT_FALSE(ReadVarint(&p, p + overlong.size(), &v));
  // A 10th byte above 1 would overflow past 64 bits.
  std::string too_big(9, '\x80');
  too_big.push_back('\x02');
  p = reinterpret_cast<const unsigned char*>(too_big.data());
  EXPECT_FALSE(ReadVarint(&p, p + too_big.size(), &v));
}

TEST(RiceTest, RoundTripsAcrossParameters) {
  for (unsigned k : {0u, 1u, 3u, 7u, 13u}) {
    const std::uint64_t values[] = {0, 1, 5, 63, 64, 1000, 123456};
    std::string bytes;
    BitWriter writer(&bytes);
    for (std::uint64_t v : values) AppendRice(&writer, v, k);
    writer.Flush();
    BitReader reader(reinterpret_cast<const unsigned char*>(bytes.data()),
                     bytes.size());
    for (std::uint64_t v : values) {
      std::uint64_t decoded = 0;
      ASSERT_TRUE(ReadRice(&reader, k, &decoded)) << "k=" << k;
      EXPECT_EQ(decoded, v) << "k=" << k;
    }
    EXPECT_LT(reader.RemainingBits(), 8u);
    EXPECT_TRUE(reader.RemainderIsZeroPadding());
  }
}

TEST(RiceTest, LongUnaryRunCannotOverflowTheShift) {
  // A terminated unary run of 128 one-bits claims quotient q = 128; with
  // k = 60 the shift q << k must be rejected, not wrapped into a small
  // "value" that then decodes quietly.
  std::string bytes(16, '\xFF');  // 128 one-bits...
  bytes.push_back('\x00');        // ...then the terminator and k low bits.
  bytes.append(8, '\x00');
  BitReader reader(reinterpret_cast<const unsigned char*>(bytes.data()),
                   bytes.size());
  std::uint64_t v = 0;
  EXPECT_FALSE(ReadRice(&reader, 60, &v));

  // An unterminated all-ones stream must fail at the unary stage.
  const std::string ones(64, '\xFF');
  BitReader ones_reader(reinterpret_cast<const unsigned char*>(ones.data()),
                        ones.size());
  EXPECT_FALSE(ReadRice(&ones_reader, 3, &v));

  // k >= 64 can never be a valid parameter.
  const std::string zero(16, '\x00');
  BitReader zero_reader(reinterpret_cast<const unsigned char*>(zero.data()),
                        zero.size());
  EXPECT_FALSE(ReadRice(&zero_reader, 64, &v));
}

TEST(BlockCodecTest, PicksTheSmallerEncoding) {
  // Near-uniform small gaps: Rice wins over one-byte-per-value varints.
  std::vector<std::uint64_t> uniform(512);
  for (std::size_t i = 0; i < uniform.size(); ++i) uniform[i] = 2 + (i % 3);
  BlockCodec codec = BlockCodec::kVarint;
  std::uint16_t rice_k = 0;
  std::string bytes = EncodeBlock(uniform, &codec, &rice_k);
  EXPECT_EQ(codec, BlockCodec::kRice);
  EXPECT_LT(bytes.size(), uniform.size());  // < 1 byte per value.

  // Heavily skewed values (mostly tiny, occasionally huge): varint wins.
  std::vector<std::uint64_t> skewed(512, 0);
  skewed[0] = ~std::uint64_t{0};
  skewed[256] = ~std::uint64_t{0} >> 1;
  bytes = EncodeBlock(skewed, &codec, &rice_k);
  EXPECT_EQ(codec, BlockCodec::kVarint);

  // Whatever wins must decode back exactly.
  std::vector<std::uint64_t> decoded(uniform.size());
  std::string u_bytes = EncodeBlock(uniform, &codec, &rice_k);
  ASSERT_TRUE(DecodeBlock(u_bytes, codec, rice_k, uniform.size(),
                          decoded.data())
                  .ok());
  EXPECT_EQ(decoded, uniform);
}

TEST(BlockCodecTest, EnforcesExactValueCount) {
  std::vector<std::uint64_t> values(100);
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = i * 7;
  BlockCodec codec = BlockCodec::kVarint;
  std::uint16_t rice_k = 0;
  const std::string bytes = EncodeBlock(values, &codec, &rice_k);

  std::vector<std::uint64_t> out(values.size() + 8);
  // Exact count: OK.
  EXPECT_TRUE(DecodeBlock(bytes, codec, rice_k, values.size(), out.data()).ok());
  // Fewer expected than encoded → trailing data must be rejected (a
  // corrupted header count can never silently succeed with extra bytes).
  EXPECT_FALSE(
      DecodeBlock(bytes, codec, rice_k, values.size() - 1, out.data()).ok());
  // More expected than encoded → truncation must be rejected, and the
  // decoder must never write past the expected slots it was given.
  EXPECT_FALSE(
      DecodeBlock(bytes, codec, rice_k, values.size() + 8, out.data()).ok());
  // Truncated bytes.
  EXPECT_FALSE(DecodeBlock(std::string_view(bytes).substr(0, bytes.size() - 1),
                           codec, rice_k, values.size(), out.data())
                   .ok());
  // Unknown codec id.
  EXPECT_FALSE(DecodeBlock(bytes, static_cast<BlockCodec>(7), rice_k,
                           values.size(), out.data())
                   .ok());
}

TEST(BlockCodecTest, EmptyBlockRoundTrips) {
  BlockCodec codec = BlockCodec::kRice;
  std::uint16_t rice_k = 9;
  const std::string bytes = EncodeBlock({}, &codec, &rice_k);
  EXPECT_TRUE(bytes.empty());
  EXPECT_EQ(codec, BlockCodec::kVarint);
  EXPECT_TRUE(DecodeBlock(bytes, codec, rice_k, 0, nullptr).ok());
  EXPECT_FALSE(DecodeBlock("x", codec, rice_k, 0, nullptr).ok());
}

// ---------------------------------------------------------------------------
// v3 round-trip properties: families x attribute skews x block sizes.
// ---------------------------------------------------------------------------

BipartiteGraph FamilyGraph(const std::string& family) {
  if (family == "uniform") return MakeUniformRandom(400, 500, 3000, 3, 19);
  if (family == "powerlaw") return MakePowerLaw(400, 500, 3000, 2.2, 3, 19);
  AffiliationConfig config;
  config.num_upper = 400;
  config.num_lower = 500;
  config.num_communities = 25;
  config.seed = 19;
  return MakeAffiliation(config);
}

BipartiteGraph ApplySkew(const BipartiteGraph& g, AttrAssignment skew) {
  BipartiteGraph upper = ReassignAttrs(g, Side::kUpper, skew, 3, 77);
  return ReassignAttrs(upper, Side::kLower, skew, 3, 78);
}

TEST(SnapshotV3RoundTrip, ByteIdenticalAcrossFamiliesSkewsAndBlockSizes) {
  for (const char* family : {"uniform", "powerlaw", "affiliation"}) {
    const BipartiteGraph base = FamilyGraph(family);
    for (AttrAssignment skew :
         {AttrAssignment::kUniformRandom, AttrAssignment::kByDegree,
          AttrAssignment::kRoundRobin}) {
      const BipartiteGraph g = ApplySkew(base, skew);
      for (std::uint32_t block_edges :
           {std::uint32_t{1}, std::uint32_t{64}, kDefaultSnapshotBlockEdges,
            static_cast<std::uint32_t>(g.NumEdges() + 10)}) {
        const std::string path = TempPath("v3_prop.snap");
        SnapshotWriteOptions options;
        options.version = kSnapshotVersionCompressed;
        options.block_edges = block_edges;
        ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
        auto loaded = ReadSnapshot(path);
        ASSERT_TRUE(loaded.ok())
            << family << " block=" << block_edges << ": "
            << loaded.status().ToString();
        ExpectByteIdentical(g, loaded.value());
        EXPECT_TRUE(loaded.value().Validate().ok());
      }
    }
  }
}

TEST(SnapshotV3RoundTrip, StandardFamiliesCompressAtLeastTwofold) {
  for (const char* family : {"uniform", "powerlaw", "affiliation"}) {
    const BipartiteGraph g = FamilyGraph(family);
    const std::string v2 = TempPath("ratio_v2.snap");
    const std::string v3 = TempPath("ratio_v3.snap");
    ASSERT_TRUE(WriteSnapshot(g, v2).ok());
    SnapshotWriteOptions options;
    options.version = kSnapshotVersionCompressed;
    ASSERT_TRUE(WriteSnapshot(g, v3, options).ok());
    const std::uint64_t v2_bytes = ReadFileBytes(v2).size();
    const std::uint64_t v3_bytes = ReadFileBytes(v3).size();
    EXPECT_GE(v2_bytes, 2 * v3_bytes)
        << family << ": v2=" << v2_bytes << " v3=" << v3_bytes;

    auto info = ProbeSnapshot(v3);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().version, kSnapshotVersionCompressed);
    EXPECT_EQ(info.value().file_bytes, v3_bytes);
    EXPECT_EQ(info.value().uncompressed_bytes, v2_bytes);
    EXPECT_EQ(info.value().checksum, GraphFingerprint(g));
    EXPECT_EQ(info.value().num_edges, g.NumEdges());
  }
}

TEST(SnapshotV3RoundTrip, MmapLoaderFallsBackToEagerDecode) {
  const BipartiteGraph g = FamilyGraph("uniform");
  const std::string path = TempPath("v3_view.snap");
  SnapshotWriteOptions options;
  options.version = kSnapshotVersionCompressed;
  ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
  auto view = ReadSnapshotView(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE(view.value().IsView());  // compressed sections: owned copy.
  ExpectByteIdentical(g, view.value());
}

TEST(SnapshotV3RoundTrip, DegenerateGraphsRoundTrip) {
  // Empty graph.
  {
    BipartiteGraph g;
    const std::string path = TempPath("v3_empty.snap");
    SnapshotWriteOptions options;
    options.version = kSnapshotVersionCompressed;
    ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
    auto loaded = ReadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectByteIdentical(g, loaded.value());
    auto reader = SnapshotReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader.value().NumBlocks(), 0u);
  }
  // Single vertex per side, one edge, at the degenerate block sizes.
  {
    BipartiteGraphBuilder builder(1, 1);
    builder.AddEdge(0, 0);
    auto built = builder.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const BipartiteGraph g = built.value();
    for (std::uint32_t block_edges : {std::uint32_t{1}, std::uint32_t{100}}) {
      const std::string path = TempPath("v3_single.snap");
      SnapshotWriteOptions options;
      options.version = kSnapshotVersionCompressed;
      options.block_edges = block_edges;
      ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
      auto loaded = ReadSnapshot(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ExpectByteIdentical(g, loaded.value());
    }
  }
  // Vertices but no edges (attr sections nonempty, zero blocks).
  {
    BipartiteGraphBuilder builder(5, 7);
    auto built = builder.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const BipartiteGraph g = built.value();
    const std::string path = TempPath("v3_noedges.snap");
    SnapshotWriteOptions options;
    options.version = kSnapshotVersionCompressed;
    ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
    auto loaded = ReadSnapshot(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectByteIdentical(g, loaded.value());
  }
}

TEST(SnapshotV3RoundTrip, RewriteIsDeterministic) {
  const BipartiteGraph g = FamilyGraph("powerlaw");
  const std::string p1 = TempPath("v3_det1.snap");
  const std::string p2 = TempPath("v3_det2.snap");
  SnapshotWriteOptions options;
  options.version = kSnapshotVersionCompressed;
  ASSERT_TRUE(WriteSnapshot(g, p1, options).ok());
  ASSERT_TRUE(WriteSnapshot(g, p2, options).ok());
  EXPECT_EQ(ReadFileBytes(p1), ReadFileBytes(p2));
}

TEST(SnapshotV3RoundTrip, ZeroBlockEdgesIsRejectedAtWrite) {
  SnapshotWriteOptions options;
  options.version = kSnapshotVersionCompressed;
  options.block_edges = 0;
  EXPECT_FALSE(
      WriteSnapshot(BipartiteGraph(), TempPath("v3_zero.snap"), options).ok());
}

// ---------------------------------------------------------------------------
// Lazy reader: per-range decode must equal the in-memory CSR slices.
// ---------------------------------------------------------------------------

TEST(SnapshotReaderTest, LazyRangeDecodeMatchesCsr) {
  const BipartiteGraph g = FamilyGraph("powerlaw");
  for (std::uint32_t block_edges : {std::uint32_t{1}, std::uint32_t{7},
                                    std::uint32_t{256},
                                    kDefaultSnapshotBlockEdges}) {
    const std::string path = TempPath("reader.snap");
    SnapshotWriteOptions options;
    options.version = kSnapshotVersionCompressed;
    options.block_edges = block_edges;
    ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
    auto opened = SnapshotReader::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const SnapshotReader& reader = opened.value();
    EXPECT_EQ(reader.NumUpper(), g.NumUpper());
    EXPECT_EQ(reader.NumLower(), g.NumLower());
    EXPECT_EQ(reader.NumEdges(), g.NumEdges());
    EXPECT_EQ(reader.BlockEdges(), block_edges);
    EXPECT_EQ(reader.Checksum(), GraphFingerprint(g));

    std::vector<VertexId> out;
    for (Side side : {Side::kUpper, Side::kLower}) {
      const auto offsets = g.Offsets(side);
      const auto neighbors = g.NeighborArray(side);
      ASSERT_EQ(reader.Offsets(side),
                std::vector<EdgeIndex>(offsets.begin(), offsets.end()));
      const auto attrs = g.AttrArray(side);
      ASSERT_EQ(reader.Attrs(side),
                std::vector<AttrId>(attrs.begin(), attrs.end()));

      // Every adjacency list, via the per-vertex entry point.
      const VertexId n = side == Side::kUpper ? g.NumUpper() : g.NumLower();
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_TRUE(reader.DecodeNeighbors(side, v, &out).ok());
        const auto want = g.Neighbors(side, v);
        ASSERT_EQ(out, std::vector<VertexId>(want.begin(), want.end()))
            << "block=" << block_edges << " v=" << v;
      }
      // A spread of arbitrary [first, count) ranges, including
      // block-straddling and empty ones.
      const std::uint64_t num_edges = g.NumEdges();
      std::uint64_t rng = 0x243F6A8885A308D3ull;
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int round = 0; round < 50; ++round) {
        const std::uint64_t first = next() % (num_edges + 1);
        const std::uint64_t count = next() % (num_edges - first + 1);
        ASSERT_TRUE(reader.DecodeEdgeRange(side, first, count, &out).ok());
        ASSERT_EQ(out.size(), count);
        for (std::uint64_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i], neighbors[first + i]) << first << "+" << i;
        }
      }
      // Out-of-bounds ranges are InvalidArgument, not UB.
      EXPECT_EQ(reader.DecodeEdgeRange(side, num_edges + 1, 0, &out).code(),
                StatusCode::kInvalidArgument);
      EXPECT_EQ(reader.DecodeEdgeRange(side, 0, num_edges + 1, &out).code(),
                StatusCode::kInvalidArgument);
      EXPECT_EQ(reader.DecodeNeighbors(side, n, &out).code(),
                StatusCode::kInvalidArgument);
    }

    // Full eager decode through the reader.
    auto decoded = reader.DecodeGraph();
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ExpectByteIdentical(g, decoded.value());
  }
}

TEST(SnapshotReaderTest, RejectsNonV3Files) {
  const BipartiteGraph g = testing::RandomSmallGraph(5, 20, 0.2);
  const std::string path = TempPath("reader_v2.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto opened = SnapshotReader::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kCorruptInput);
}

// ---------------------------------------------------------------------------
// Fuzz: seeded xorshift mutations, mirroring wire_test. ASan/UBSan turn
// these loops into no-UB proofs for arbitrary flips.
// ---------------------------------------------------------------------------

TEST(SnapshotCodecFuzz, BlockDecoderSurvivesBitFlipsAndGarbage) {
  // A realistic delta-mapped block: gaps plus occasional absolutes.
  std::vector<std::uint64_t> values(700);
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (auto& v : values) v = next() % ((next() % 16 == 0) ? 100000 : 40);
  BlockCodec codec = BlockCodec::kVarint;
  std::uint16_t rice_k = 0;
  const std::string pristine = EncodeBlock(values, &codec, &rice_k);

  std::vector<std::uint64_t> out(values.size());
  for (int round = 0; round < 2000; ++round) {
    std::string bytes = pristine;
    const int flips = 1 + static_cast<int>(next() % 5);
    for (int f = 0; f < flips; ++f) {
      bytes[next() % bytes.size()] ^= static_cast<char>(1u << (next() % 8));
    }
    // Success is allowed (the checksum that catches value corruption
    // lives in the snapshot block index, above this layer) — but the
    // decode must never crash, hang, or claim a different value count.
    (void)DecodeBlock(bytes, codec, rice_k, values.size(), out.data());
  }
  // Random garbage under every codec id and rice parameter.
  for (int round = 0; round < 2000; ++round) {
    std::string bytes;
    const std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(next() & 0xFF));
    }
    const auto codec_id = static_cast<BlockCodec>(next() % 3);  // incl. bad id.
    const unsigned k = static_cast<unsigned>(next() % 70);      // incl. k >= 64.
    const std::size_t expected = next() % (out.size() + 1);
    (void)DecodeBlock(bytes, codec_id, k, expected, out.data());
  }
}

TEST(SnapshotCodecFuzz, V3LoadersSurviveFileMutations) {
  const BipartiteGraph g = testing::RandomSmallGraph(33, 40, 0.15);
  const std::string path = TempPath("v3_fuzz.snap");
  SnapshotWriteOptions options;
  options.version = kSnapshotVersionCompressed;
  options.block_edges = 16;  // several blocks per side.
  ASSERT_TRUE(WriteSnapshot(g, path, options).ok());
  const std::string pristine = ReadFileBytes(path);
  const std::uint64_t fingerprint = GraphFingerprint(g);

  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 800; ++round) {
    std::string bytes = pristine;
    const int flips = 1 + static_cast<int>(next() % 5);
    for (int f = 0; f < flips; ++f) {
      bytes[next() % bytes.size()] ^= static_cast<char>(1u << (next() % 8));
    }
    WriteFileBytes(path, bytes);
    // Eager load: success is only possible when the flips hit ignored
    // bytes (reserved fields), i.e. the content is untouched.
    auto loaded = ReadSnapshot(path);
    if (loaded.ok()) {
      EXPECT_EQ(GraphFingerprint(loaded.value()), fingerprint);
    }
    // Lazy open + full-range decode: flips in the blocks region pass
    // Open (only metadata is verified there) and must then be caught —
    // or proven harmless — per block on decode.
    auto opened = SnapshotReader::Open(path);
    if (opened.ok()) {
      auto decoded = opened.value().DecodeGraph();
      if (decoded.ok()) {
        EXPECT_EQ(GraphFingerprint(decoded.value()), fingerprint);
      }
    }
  }
  // Truncation at every possible length: never a crash, always Status.
  for (std::size_t cut = 0; cut < pristine.size();
       cut += 1 + next() % 97) {
    WriteFileBytes(path, pristine.substr(0, cut));
    EXPECT_FALSE(ReadSnapshot(path).ok()) << "cut=" << cut;
    EXPECT_FALSE(SnapshotReader::Open(path).ok()) << "cut=" << cut;
  }
  // Random garbage files.
  for (int round = 0; round < 400; ++round) {
    std::string bytes;
    const std::size_t len = next() % 200;
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(next() & 0xFF));
    }
    WriteFileBytes(path, bytes);
    (void)ReadSnapshot(path);
    (void)SnapshotReader::Open(path);
  }
}

}  // namespace
}  // namespace fairbc
