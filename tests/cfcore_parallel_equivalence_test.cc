// Serial-vs-parallel equivalence of the graph-reduction peeling: for
// every generator family and every num_threads in {2, 8} the parallel
// frontier-based peel must produce byte-identical alive masks (and hence
// identical induced-subgraph degrees) to the serial queue-based peel.
// The core is a unique maximal fixpoint, so any peel order must converge
// to the same set — these tests pin that down across FCore, BFCore,
// CFCore, BCFCore and the raw EgoColorfulCorePeel, including a
// single-giant-community graph whose one dominating subtree also
// exercises the engines' depth-adaptive task splitting.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/cfcore.h"
#include "core/coloring.h"
#include "core/fcore.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/reduction_context.h"
#include "core/two_hop_graph.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::RandomSmallGraph;

constexpr unsigned kThreadCounts[] = {2, 8};

// One planted community covering a third of each side: after pruning the
// search tree is dominated by a single root subtree, the shape the
// depth-adaptive splitter exists for.
BipartiteGraph SingleGiantCommunityGraph() {
  AffiliationConfig config;
  config.num_upper = 150;
  config.num_lower = 150;
  config.num_communities = 1;
  config.community_upper_min = 20;
  config.community_upper_max = 26;
  config.community_lower_min = 20;
  config.community_lower_max = 26;
  config.noise_fraction = 0.4;
  config.seed = 13;
  return MakeAffiliation(config);
}

std::vector<BipartiteGraph> GeneratorGraphs() {
  std::vector<BipartiteGraph> graphs;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    graphs.push_back(RandomSmallGraph(seed, 14, 0.4));
  }
  graphs.push_back(MakeUniformRandom(200, 200, 1600, 2, 21));
  graphs.push_back(MakePowerLaw(200, 200, 1600, 2.2, 2, 22));
  AffiliationConfig config;
  config.num_upper = 150;
  config.num_lower = 150;
  config.num_communities = 10;
  config.seed = 23;
  graphs.push_back(MakeAffiliation(config));
  graphs.push_back(SingleGiantCommunityGraph());
  return graphs;
}

// Degree sequence of the alive-induced subgraph on both sides; equal
// masks imply equal degrees, so this is a belt-and-braces check that the
// masks really describe the same subgraph.
std::vector<VertexId> AliveDegrees(const BipartiteGraph& g,
                                   const SideMasks& masks) {
  std::vector<VertexId> degrees;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    if (!masks.upper_alive[u]) continue;
    VertexId d = 0;
    for (VertexId v : g.Neighbors(Side::kUpper, u)) {
      if (masks.lower_alive[v]) ++d;
    }
    degrees.push_back(d);
  }
  for (VertexId v = 0; v < g.NumLower(); ++v) {
    if (!masks.lower_alive[v]) continue;
    VertexId d = 0;
    for (VertexId u : g.Neighbors(Side::kLower, v)) {
      if (masks.upper_alive[u]) ++d;
    }
    degrees.push_back(d);
  }
  return degrees;
}

void ExpectMasksEqual(const BipartiteGraph& g, const SideMasks& serial,
                      const SideMasks& parallel, const std::string& label) {
  EXPECT_EQ(serial.upper_alive, parallel.upper_alive) << label;
  EXPECT_EQ(serial.lower_alive, parallel.lower_alive) << label;
  EXPECT_EQ(AliveDegrees(g, serial), AliveDegrees(g, parallel)) << label;
}

TEST(PeelParallelEquivalence, FCoreAndBFCore) {
  const std::vector<BipartiteGraph> graphs = GeneratorGraphs();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const BipartiteGraph& g = graphs[i];
    for (std::uint32_t alpha : {1u, 2u, 3u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        const SideMasks serial_f = FCore(g, alpha, beta);
        const SideMasks serial_bf = BFCore(g, alpha, beta);
        for (unsigned threads : kThreadCounts) {
          ReductionContext ctx(threads);
          const std::string label = "graph=" + std::to_string(i) +
                                    " alpha=" + std::to_string(alpha) +
                                    " beta=" + std::to_string(beta) +
                                    " threads=" + std::to_string(threads);
          ExpectMasksEqual(g, serial_f, FCore(g, alpha, beta, &ctx),
                           "FCore " + label);
          ExpectMasksEqual(g, serial_bf, BFCore(g, alpha, beta, &ctx),
                           "BFCore " + label);
        }
      }
    }
  }
}

TEST(PeelParallelEquivalence, CFCoreAndBCFCore) {
  const std::vector<BipartiteGraph> graphs = GeneratorGraphs();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const BipartiteGraph& g = graphs[i];
    for (std::uint32_t alpha : {1u, 2u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        const PruneResult serial_c = CFCore(g, alpha, beta);
        const PruneResult serial_bc = BCFCore(g, alpha, beta);
        for (unsigned threads : kThreadCounts) {
          ReductionContext ctx(threads);
          const std::string label = "graph=" + std::to_string(i) +
                                    " alpha=" + std::to_string(alpha) +
                                    " beta=" + std::to_string(beta) +
                                    " threads=" + std::to_string(threads);
          ExpectMasksEqual(g, serial_c.masks,
                           CFCore(g, alpha, beta, &ctx).masks,
                           "CFCore " + label);
          ExpectMasksEqual(g, serial_bc.masks,
                           BCFCore(g, alpha, beta, &ctx).masks,
                           "BCFCore " + label);
        }
      }
    }
  }
}

TEST(PeelParallelEquivalence, EgoColorfulCorePeelDirect) {
  const BipartiteGraph g = SingleGiantCommunityGraph();
  const SideMasks masks = FCore(g, 2, 2);
  const UnipartiteGraph h = Construct2HopGraph(g, Side::kLower, 2, masks);
  const Coloring coloring = GreedyColor(h, masks.lower_alive);
  for (std::uint32_t k : {1u, 2u, 3u}) {
    std::vector<char> serial = masks.lower_alive;
    EgoColorfulCorePeel(h, coloring, k, serial, nullptr);
    for (unsigned threads : kThreadCounts) {
      ReductionContext ctx(threads);
      std::vector<char> parallel = masks.lower_alive;
      EgoColorfulCorePeel(h, coloring, k, parallel, nullptr, &ctx);
      EXPECT_EQ(serial, parallel)
          << "k=" << k << " threads=" << threads;
    }
  }
}

// Pruning runs inside the pipeline with the same thread count as the
// search; the full enumeration must stay equivalent now that both phases
// parallelize. The giant community graph funnels nearly the whole search
// into one root subtree, so with 8 workers the pool queue runs dry and
// the depth-adaptive splitter kicks in.
TEST(PeelParallelEquivalence, EnumerationOnGiantCommunity) {
  const BipartiteGraph g = SingleGiantCommunityGraph();
  const FairBicliqueParams params{2, 2, 1, 0.0};
  using PipelineFn = EnumStats (*)(const BipartiteGraph&,
                                   const FairBicliqueParams&,
                                   const EnumOptions&, const BicliqueSink&);
  const std::pair<const char*, PipelineFn> engines[] = {
      {"SSFBC", EnumerateSSFBC},
      {"SSFBC++", EnumerateSSFBCPlusPlus},
      {"BSFBC", EnumerateBSFBC},
      {"BSFBC++", EnumerateBSFBCPlusPlus},
  };
  for (const auto& [name, fn] : engines) {
    CollectSink serial_sink;
    EnumStats serial_stats = fn(g, params, {}, serial_sink.AsSink());
    const std::vector<Biclique> serial = Canonicalize(serial_sink.results());
    for (unsigned threads : kThreadCounts) {
      EnumOptions options;
      options.num_threads = threads;
      CollectSink sink;
      EnumStats stats = fn(g, params, options, sink.AsSink());
      EXPECT_EQ(Canonicalize(sink.results()), serial)
          << name << " threads=" << threads;
      EXPECT_EQ(stats.num_results, serial_stats.num_results)
          << name << " threads=" << threads;
      EXPECT_EQ(stats.remaining_upper, serial_stats.remaining_upper)
          << name << " threads=" << threads;
      EXPECT_EQ(stats.remaining_lower, serial_stats.remaining_lower)
          << name << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace fairbc
