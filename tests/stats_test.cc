#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/stats.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

TEST(DegreeStats, BasicValues) {
  BipartiteGraph g = MakeGraph(3, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}},
                               {0, 1, 0}, {0, 1, 0});
  DegreeStats up = ComputeDegreeStats(g, Side::kUpper);
  EXPECT_EQ(up.min_degree, 0u);
  EXPECT_EQ(up.max_degree, 3u);
  EXPECT_DOUBLE_EQ(up.mean_degree, 4.0 / 3.0);
  EXPECT_EQ(up.isolated, 1u);  // u2 has no edges.
  DegreeStats lo = ComputeDegreeStats(g, Side::kLower);
  EXPECT_EQ(lo.max_degree, 2u);
  EXPECT_EQ(lo.isolated, 0u);
}

TEST(DegreeStats, EmptyGraph) {
  BipartiteGraph g;
  DegreeStats stats = ComputeDegreeStats(g, Side::kUpper);
  EXPECT_EQ(stats.max_degree, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
}

TEST(DegreeHistogram, BucketsAndOverflow) {
  BipartiteGraph g = MakeGraph(3, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}},
                               {0, 1, 0}, {0, 1, 0});
  auto hist = DegreeHistogram(g, Side::kUpper, 2);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 1u);  // u2
  EXPECT_EQ(hist[1], 1u);  // u1
  EXPECT_EQ(hist[2], 1u);  // u0 (degree 3, clamped into last bucket)
}

TEST(Butterflies, SingleButterfly) {
  // Complete 2x2 = exactly one butterfly.
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
                               {0, 1}, {0, 1});
  EXPECT_EQ(CountButterflies(g), 1u);
}

TEST(Butterflies, CompleteBipartite) {
  // K_{3,4}: C(3,2) * C(4,2) = 3 * 6 = 18 butterflies.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(3, 4, edges, {0, 1, 0}, {0, 1, 0, 1});
  EXPECT_EQ(CountButterflies(g), 18u);
}

TEST(Butterflies, NoneInAStar) {
  BipartiteGraph g = MakeGraph(1, 4, {{0, 0}, {0, 1}, {0, 2}, {0, 3}},
                               {0}, {0, 1, 0, 1});
  EXPECT_EQ(CountButterflies(g), 0u);
}

TEST(Butterflies, MatchesNaiveOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.4);
    EXPECT_EQ(CountButterflies(g), CountButterfliesNaive(g))
        << "seed=" << seed << " " << g.DebugString();
  }
}

TEST(Butterflies, SymmetricUnderSideChoice) {
  // Anchoring heuristic must not change the count: compare skewed graphs
  // where each side in turn has the smaller wedge sum.
  BipartiteGraph tall = MakeUniformRandom(200, 20, 600, 2, 3);
  BipartiteGraph wide = MakeUniformRandom(20, 200, 600, 2, 3);
  EXPECT_EQ(CountButterflies(tall), CountButterfliesNaive(tall));
  EXPECT_EQ(CountButterflies(wide), CountButterfliesNaive(wide));
}

TEST(AttrImbalance, BalancedAndSkewed) {
  BipartiteGraph g = MakeGraph(2, 4, {{0, 0}, {1, 1}}, {0, 1}, {0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(AttrImbalance(g, Side::kUpper), 0.5);
  EXPECT_DOUBLE_EQ(AttrImbalance(g, Side::kLower), 0.75);
}

TEST(StatsReport, MentionsKeyNumbers) {
  BipartiteGraph g = MakeGraph(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}},
                               {0, 1}, {0, 1});
  std::string report = StatsReport(g);
  EXPECT_NE(report.find("butterflies = 1"), std::string::npos);
  EXPECT_NE(report.find("upper"), std::string::npos);
  EXPECT_NE(report.find("lower"), std::string::npos);
}

}  // namespace
}  // namespace fairbc
