#include <gtest/gtest.h>

#include "core/enumerate.h"

namespace fairbc {
namespace {

TEST(Biclique, OrderingAndEquality) {
  Biclique a{{1, 2}, {3}};
  Biclique b{{1, 2}, {4}};
  Biclique c{{1, 3}, {0}};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(Biclique, DebugStringFormat) {
  Biclique b{{1, 2}, {7}};
  EXPECT_EQ(b.DebugString(), "U{1,2} V{7}");
  Biclique empty;
  EXPECT_EQ(empty.DebugString(), "U{} V{}");
}

TEST(FairBicliqueParams, SpecsCarryTheRightFields) {
  FairBicliqueParams p{3, 5, 2, 0.4};
  FairnessSpec lower = p.LowerSpec();
  EXPECT_EQ(lower.min_per_class, 5u);
  EXPECT_EQ(lower.delta, 2u);
  EXPECT_DOUBLE_EQ(lower.theta, 0.4);
  EXPECT_TRUE(lower.proportional());
  FairnessSpec upper = p.UpperSpec();
  EXPECT_EQ(upper.min_per_class, 3u);
  FairnessSpec plain{1, 0, 0.0};
  EXPECT_FALSE(plain.proportional());
}

TEST(Sinks, CollectAndCount) {
  CollectSink collect;
  CountSink count;
  Biclique b{{0}, {1}};
  auto cs = collect.AsSink();
  auto ns = count.AsSink();
  EXPECT_TRUE(cs(b));
  EXPECT_TRUE(cs(b));
  EXPECT_TRUE(ns(b));
  EXPECT_EQ(collect.results().size(), 2u);
  EXPECT_EQ(count.count(), 1u);
}

TEST(EnumStats, DebugStringMentionsBudget) {
  EnumStats stats;
  stats.num_results = 5;
  stats.budget_exhausted = true;
  std::string s = stats.DebugString();
  EXPECT_NE(s.find("results=5"), std::string::npos);
  EXPECT_NE(s.find("BUDGET_EXHAUSTED"), std::string::npos);
  stats.budget_exhausted = false;
  EXPECT_EQ(stats.DebugString().find("BUDGET_EXHAUSTED"), std::string::npos);
}

TEST(SideHelpers, OppositeAndToString) {
  EXPECT_EQ(Opposite(Side::kUpper), Side::kLower);
  EXPECT_EQ(Opposite(Side::kLower), Side::kUpper);
  EXPECT_STREQ(ToString(Side::kUpper), "upper");
  EXPECT_STREQ(ToString(Side::kLower), "lower");
}

}  // namespace
}  // namespace fairbc
