#include <gtest/gtest.h>

#include <set>

#include "common/memory.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace fairbc {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "INVALID_ARGUMENT: bad alpha");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kCorruptInput, StatusCode::kOutOfRange,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUInt64(1000), b.NextUInt64(1000));
  }
}

TEST(Rng, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    auto x = rng.NextUInt64(7);
    EXPECT_LT(x, 7u);
    auto y = rng.NextInt(-3, 3);
    EXPECT_GE(y, -3);
    EXPECT_LE(y, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(9);
  auto picked = rng.SampleWithoutReplacement(50, 20);
  std::set<std::uint32_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 20u);
  for (auto v : picked) EXPECT_LT(v, 50u);
}

TEST(Rng, SampleFullRange) {
  Rng rng(10);
  auto picked = rng.SampleWithoutReplacement(8, 8);
  std::set<std::uint32_t> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(Timer, MeasuresNonNegative) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

TEST(Deadline, ZeroBudgetNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.Expired());
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Burn a little time.
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  (void)x;
  EXPECT_TRUE(d.Expired());
}

TEST(Memory, RssReadable) {
  // /proc is available on the target platform.
  EXPECT_GT(CurrentRssBytes(), 0u);
  EXPECT_GE(PeakRssBytes(), CurrentRssBytes() / 2);
}

TEST(Memory, MeterTracksPeak) {
  MemoryMeter meter;
  meter.Add(100);
  meter.Add(200);
  meter.Sub(150);
  meter.Add(50);
  EXPECT_EQ(meter.peak_bytes(), 300u);
  EXPECT_EQ(meter.current_bytes(), 200u);
}

TEST(Memory, HumanBytesFormats) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MB");
}

}  // namespace
}  // namespace fairbc
