// Service-layer tests: GraphCatalog semantics, ResultCache LRU +
// telemetry, and the concurrent-query equivalence acceptance criterion —
// batches executed on pool widths {2, 8} must return results
// byte-identical to serial pipeline runs, with cache hits verified on
// repeated parameters and the snapshot load measurably faster than the
// text parse on the largest generator config.

#include "service/query_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/snapshot.h"
#include "service/graph_catalog.h"
#include "service/query.h"
#include "service/response_json.h"
#include "service/result_cache.h"
#include "test_util.h"

namespace fairbc {
namespace {

BipartiteGraph ServiceTestGraph() {
  AffiliationConfig config;
  config.num_upper = 400;
  config.num_lower = 400;
  config.num_communities = 20;
  config.seed = 23;
  return MakeAffiliation(config);
}

QuerySummary SummaryWithCount(std::uint64_t count) {
  QuerySummary s;
  s.count = count;
  return s;
}

TEST(GraphCatalogTest, AddGetRemoveAndVersioning) {
  GraphCatalog catalog;
  EXPECT_EQ(catalog.Get("g"), nullptr);
  EXPECT_FALSE(catalog.AddGraph("", ServiceTestGraph()).ok());

  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  auto entry = catalog.Get("g");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->name, "g");
  EXPECT_EQ(entry->version, GraphFingerprint(entry->graph));
  EXPECT_EQ(catalog.size(), 1u);

  // Replacing a name publishes a new entry; the old handle stays valid
  // and unchanged (immutability invariant).
  ASSERT_TRUE(catalog.AddGraph("g", MakeUniformRandom(50, 50, 200, 2, 9)).ok());
  auto replaced = catalog.Get("g");
  ASSERT_NE(replaced, nullptr);
  EXPECT_NE(replaced->version, entry->version);
  EXPECT_EQ(entry->graph.NumUpper(), 400u);  // old handle untouched.

  EXPECT_TRUE(catalog.Remove("g"));
  EXPECT_FALSE(catalog.Remove("g"));
  EXPECT_EQ(catalog.Get("g"), nullptr);
}

TEST(GraphCatalogTest, AddFromFileAllFormatsAndErrors) {
  GraphCatalog catalog;
  const BipartiteGraph g = ServiceTestGraph();
  const std::string attr_path = ::testing::TempDir() + "/catalog_g.fbg";
  const std::string snap_path = ::testing::TempDir() + "/catalog_g.snap";
  ASSERT_TRUE(WriteAttributedGraph(g, attr_path).ok());
  ASSERT_TRUE(WriteSnapshot(g, snap_path).ok());

  ASSERT_TRUE(
      catalog.AddFromFile("t", attr_path, GraphCatalog::Format::kAttr).ok());
  ASSERT_TRUE(
      catalog.AddFromFile("s", snap_path, GraphCatalog::Format::kSnapshot).ok());
  // Same content through either path → same version.
  EXPECT_EQ(catalog.Get("t")->version, catalog.Get("s")->version);

  // The mmap format registers a view entry with the same version (same
  // bytes) and no per-load CSR copies.
  ASSERT_TRUE(
      catalog.AddFromFile("m", snap_path, GraphCatalog::Format::kSnapshotMmap)
          .ok());
  EXPECT_TRUE(catalog.Get("m")->graph.IsView());
  EXPECT_EQ(catalog.Get("m")->version, catalog.Get("s")->version);
  ASSERT_EQ(ParseCatalogFormat("mmap"), GraphCatalog::Format::kSnapshotMmap);
  EXPECT_STREQ(ToString(GraphCatalog::Format::kSnapshotMmap), "mmap");

  Status missing = catalog.AddFromFile("x", ::testing::TempDir() + "/nope.snap",
                                       GraphCatalog::Format::kSnapshot);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(catalog.Get("x"), nullptr);

  // A text file fed to the snapshot loader fails with a Status.
  Status wrong =
      catalog.AddFromFile("x", attr_path, GraphCatalog::Format::kSnapshot);
  EXPECT_FALSE(wrong.ok());
}

TEST(ResultCacheTest, LruEvictionAndTelemetry) {
  ResultCache cache(2);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", SummaryWithCount(1));
  cache.Insert("b", SummaryWithCount(2));
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refreshes a's recency.
  cache.Insert("c", SummaryWithCount(3));      // evicts b, not a.
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  ASSERT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.Lookup("c")->count, 3u);

  auto t = cache.telemetry();
  EXPECT_EQ(t.evictions, 1u);
  EXPECT_EQ(t.entries, 2u);
  EXPECT_EQ(t.insertions, 3u);
  EXPECT_EQ(t.hits + t.misses, 6u);  // the six Lookup calls above.

  cache.Clear();
  t = cache.telemetry();
  EXPECT_EQ(t.entries, 0u);
  EXPECT_EQ(t.hits, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesButCountsMisses) {
  ResultCache cache(0);
  cache.Insert("a", SummaryWithCount(1));
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  auto t = cache.telemetry();
  EXPECT_EQ(t.insertions, 0u);
  EXPECT_EQ(t.entries, 0u);
  // A disabled cache still reports its lookup traffic: a --cache=0
  // server under load must show real misses, not zeros.
  EXPECT_EQ(t.misses, 2u);
  EXPECT_EQ(t.hits, 0u);
  EXPECT_EQ(t.HitRate(), 0.0);
}

TEST(CacheKeyTest, DistinguishesEveryParameter) {
  QueryRequest base;
  base.graph = "g";
  base.params = {2, 2, 1, 0.0};
  const std::string key = CanonicalCacheKey(base, 42);

  EXPECT_EQ(CanonicalCacheKey(base, 42), key);
  EXPECT_NE(CanonicalCacheKey(base, 43), key);
  auto differ = [&](auto mutate) {
    QueryRequest req = base;
    mutate(req);
    return CanonicalCacheKey(req, 42);
  };
  EXPECT_NE(differ([](QueryRequest& r) { r.model = FairModel::kBsfbc; }), key);
  EXPECT_NE(differ([](QueryRequest& r) { r.algo = FairAlgo::kNaive; }), key);
  EXPECT_NE(differ([](QueryRequest& r) { r.params.alpha = 3; }), key);
  EXPECT_NE(differ([](QueryRequest& r) { r.params.beta = 3; }), key);
  EXPECT_NE(differ([](QueryRequest& r) { r.params.delta = 2; }), key);
  EXPECT_NE(differ([](QueryRequest& r) { r.params.theta = 0.3; }), key);
  EXPECT_NE(differ([](QueryRequest& r) {
              r.options.ordering = VertexOrdering::kId;
            }),
            key);
  EXPECT_NE(differ([](QueryRequest& r) {
              r.options.pruning = PruningLevel::kNone;
            }),
            key);
  // Thread count deliberately does NOT change the key.
  EXPECT_EQ(differ([](QueryRequest& r) { r.options.num_threads = 8; }), key);
}

std::vector<QueryRequest> MixedRequests(const std::string& graph) {
  std::vector<QueryRequest> requests;
  for (auto model : {FairModel::kSsfbc, FairModel::kBsfbc}) {
    for (std::uint32_t alpha = 2; alpha <= 3; ++alpha) {
      for (std::uint32_t delta = 1; delta <= 2; ++delta) {
        QueryRequest req;
        req.graph = graph;
        req.model = model;
        req.params = {alpha, 2, delta, 0.0};
        req.include_bicliques = true;
        requests.push_back(req);
      }
    }
  }
  return requests;
}

/// Acceptance criterion: concurrent batches on pool widths {2, 8} return
/// result sets byte-identical to serial pipeline runs of the same
/// queries, and repeated parameters afterwards are served from the cache
/// with the same summary.
TEST(QueryExecutorTest, ConcurrentBatchesMatchSerialRuns) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  const std::vector<QueryRequest> requests = MixedRequests("g");

  // Serial reference: the plain pipeline entry points, num_threads = 1.
  std::vector<std::vector<Biclique>> expected;
  std::vector<EnumStats> expected_stats;
  for (const QueryRequest& req : requests) {
    CollectSink sink;
    expected_stats.push_back(RunEnumeration(ServiceTestGraph(), req.model,
                                            req.algo, req.params, req.options,
                                            sink.AsSink()));
    expected.push_back(testing::Canonicalize(sink.results()));
    ASSERT_FALSE(expected.back().empty());
  }

  for (unsigned width : {2u, 8u}) {
    QueryExecutorOptions options;
    options.num_threads = width;
    QueryExecutor executor(catalog, options);
    ASSERT_EQ(executor.num_threads(), width);

    std::vector<QueryResult> results = executor.ExecuteBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << results[i].status.ToString();
      EXPECT_FALSE(results[i].cache_hit);  // all parameter points distinct.
      EXPECT_EQ(testing::Canonicalize(results[i].bicliques), expected[i])
          << "width=" << width << " query=" << i;
      EXPECT_EQ(results[i].summary.count, expected_stats[i].num_results);
      EXPECT_EQ(results[i].summary.stats.num_results,
                expected_stats[i].num_results);
    }

    // Replay summary-only: every repeat must hit the cache and agree.
    std::vector<QueryRequest> replay = requests;
    for (QueryRequest& req : replay) req.include_bicliques = false;
    std::vector<QueryResult> cached = executor.ExecuteBatch(replay);
    for (std::size_t i = 0; i < cached.size(); ++i) {
      ASSERT_TRUE(cached[i].status.ok());
      EXPECT_TRUE(cached[i].cache_hit) << "width=" << width << " query=" << i;
      EXPECT_EQ(cached[i].summary.count, results[i].summary.count);
      EXPECT_EQ(cached[i].summary.digest, results[i].summary.digest);
    }
    const auto telemetry = executor.cache().telemetry();
    EXPECT_EQ(telemetry.hits, requests.size());
    EXPECT_GE(telemetry.insertions, requests.size());
  }
}

TEST(QueryExecutorTest, DigestIsThreadCountInvariant) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutor executor(catalog, {});

  QueryRequest req;
  req.graph = "g";
  req.params = {2, 2, 1, 0.0};
  req.use_cache = false;  // force real runs.
  QueryResult serial = executor.Execute(req);
  ASSERT_TRUE(serial.status.ok());

  req.options.num_threads = 4;  // parallel search inside one query.
  QueryResult parallel = executor.Execute(req);
  ASSERT_TRUE(parallel.status.ok());
  EXPECT_EQ(parallel.summary.count, serial.summary.count);
  EXPECT_EQ(parallel.summary.digest, serial.summary.digest);
  EXPECT_EQ(parallel.summary.max_upper, serial.summary.max_upper);
  EXPECT_EQ(parallel.summary.max_lower, serial.summary.max_lower);
}

TEST(QueryExecutorTest, UnknownGraphAndNoCachePaths) {
  GraphCatalog catalog;
  QueryExecutorOptions options;
  options.num_threads = 2;
  QueryExecutor executor(catalog, options);

  QueryRequest req;
  req.graph = "missing";
  QueryResult result = executor.Execute(req);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kNotFound);

  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  req.graph = "g";
  req.use_cache = false;
  EXPECT_TRUE(executor.Execute(req).status.ok());
  EXPECT_TRUE(executor.Execute(req).status.ok());
  EXPECT_EQ(executor.cache().telemetry().hits, 0u);
  EXPECT_EQ(executor.cache().telemetry().insertions, 0u);
}

TEST(QueryExecutorTest, BudgetExhaustedRunsAreNotCached) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutor executor(catalog, {});

  QueryRequest req;
  req.graph = "g";
  req.params = {1, 1, 4, 0.0};
  req.options.node_budget = 1;  // trips immediately.
  QueryResult result = executor.Execute(req);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.summary.stats.budget_exhausted);
  EXPECT_EQ(executor.cache().telemetry().insertions, 0u);

  // The partial run must not be served to an unbudgeted repeat.
  req.options.node_budget = 0;
  QueryResult full = executor.Execute(req);
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.cache_hit);
  EXPECT_FALSE(full.summary.stats.budget_exhausted);
  EXPECT_GE(full.summary.count, result.summary.count);
}

/// Single-flight admission: N identical summary-only queries fired
/// concurrently result in exactly ONE execution; every other caller is
/// either coalesced behind the in-flight leader or served by the cache
/// the leader filled — and all of them report the same digest. The
/// executions==1 assertion is timing-independent: admission (cache
/// lookup + in-flight join) is atomic in the executor.
TEST(QueryExecutorTest, ConcurrentIdenticalQueriesCoalesce) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutor executor(catalog, {});

  QueryRequest req;
  req.graph = "g";
  req.params = {2, 2, 1, 0.0};

  constexpr unsigned kCallers = 6;
  std::vector<QueryResult> results(kCallers);
  std::barrier sync(kCallers);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kCallers; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      results[t] = executor.Execute(req);
    });
  }
  for (std::thread& t : threads) t.join();

  unsigned ran = 0, coalesced = 0, cache_hits = 0;
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.summary.digest, results[0].summary.digest);
    EXPECT_EQ(r.summary.count, results[0].summary.count);
    ran += (!r.cache_hit && !r.coalesced) ? 1 : 0;
    coalesced += r.coalesced ? 1 : 0;
    cache_hits += r.cache_hit ? 1 : 0;
  }
  EXPECT_EQ(executor.execution_count(), 1u);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(coalesced + cache_hits, kCallers - 1);
  auto telemetry = executor.telemetry();
  EXPECT_EQ(telemetry.executions, 1u);
  EXPECT_EQ(telemetry.coalesced, coalesced);
  EXPECT_EQ(telemetry.cache.insertions, 1u);

  // A later identical query is a plain cache hit, not a new execution.
  QueryResult replay = executor.Execute(req);
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_EQ(executor.execution_count(), 1u);
}

/// Queries that must not share results do not coalesce: use_cache=false
/// callers always run themselves.
TEST(QueryExecutorTest, UncachedQueriesDoNotCoalesce) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutor executor(catalog, {});

  QueryRequest req;
  req.graph = "g";
  req.params = {2, 2, 1, 0.0};
  req.use_cache = false;

  constexpr unsigned kCallers = 3;
  std::vector<QueryResult> results(kCallers);
  std::barrier sync(kCallers);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kCallers; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      results[t] = executor.Execute(req);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_FALSE(r.cache_hit);
    EXPECT_FALSE(r.coalesced);
    EXPECT_EQ(r.summary.digest, results[0].summary.digest);
  }
  EXPECT_EQ(executor.execution_count(), kCallers);
  EXPECT_EQ(executor.coalesced_count(), 0u);
}

/// Queries carrying their own budget never wait on an identical-key
/// leader (whose runtime may exceed their deadline — the cache key
/// excludes budgets): they run themselves, so `coalesced` can never be
/// set on a budgeted result, whatever the interleaving.
TEST(QueryExecutorTest, BudgetedQueriesNeverWaitOnALeader) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutor executor(catalog, {});

  QueryRequest slow;
  slow.graph = "g";
  slow.params = {2, 2, 1, 0.0};

  QueryRequest budgeted = slow;
  budgeted.options.time_budget_seconds = 0.001;

  constexpr unsigned kPairs = 3;
  std::vector<QueryResult> budgeted_results(kPairs);
  std::barrier sync(2 * kPairs);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kPairs; ++t) {
    threads.emplace_back([&] {
      sync.arrive_and_wait();
      (void)executor.Execute(slow);
    });
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      budgeted_results[t] = executor.Execute(budgeted);
    });
  }
  for (std::thread& t : threads) t.join();

  for (const QueryResult& r : budgeted_results) {
    ASSERT_TRUE(r.status.ok());
    // Whatever the interleaving: a cache hit (leader already published)
    // or an own run — never an adopted wait.
    EXPECT_FALSE(r.coalesced);
  }
}

/// Regression test for nested-pool oversubscription: a query inside an
/// ExecuteBatch must not spin its own enumeration pool on top of the
/// batch pool, however many threads the request asks for. The clamp is
/// observable through QueryResult::effective_threads; direct Execute
/// calls keep their requested width.
TEST(QueryExecutorTest, BatchClampsPerQueryThreadsToOne) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  QueryExecutor executor(catalog, options);

  std::vector<QueryRequest> requests = MixedRequests("g");
  for (QueryRequest& req : requests) {
    req.include_bicliques = false;
    req.use_cache = false;  // force real runs so the clamp is visible.
    req.options.num_threads = 8;
  }
  std::vector<QueryResult> batched = executor.ExecuteBatch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (const QueryResult& r : batched) {
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.effective_threads, 1u) << "nested pool inside a batch";
  }

  // The clamp changes thread accounting only, never the result set.
  QueryResult direct = executor.Execute(requests[0]);
  ASSERT_TRUE(direct.status.ok());
  EXPECT_EQ(direct.effective_threads, 8u);
  EXPECT_EQ(direct.summary.digest, batched[0].summary.digest);
  EXPECT_EQ(direct.summary.count, batched[0].summary.count);
}

/// Queries run identically against an mmap'd catalog entry: same digest
/// and count as the owned-snapshot entry of the same bytes.
TEST(QueryExecutorTest, MmapEntryMatchesOwnedEntry) {
  const std::string snap_path = ::testing::TempDir() + "/exec_mmap.snap";
  ASSERT_TRUE(WriteSnapshot(ServiceTestGraph(), snap_path).ok());
  GraphCatalog catalog;
  ASSERT_TRUE(
      catalog.AddFromFile("owned", snap_path, GraphCatalog::Format::kSnapshot)
          .ok());
  ASSERT_TRUE(catalog
                  .AddFromFile("mapped", snap_path,
                               GraphCatalog::Format::kSnapshotMmap)
                  .ok());
  ASSERT_TRUE(catalog.Get("mapped")->graph.IsView());
  QueryExecutor executor(catalog, {});

  QueryRequest req;
  req.graph = "owned";
  req.params = {2, 2, 1, 0.0};
  req.use_cache = false;  // same content ⇒ same cache key; force real runs.
  QueryResult owned = executor.Execute(req);
  req.graph = "mapped";
  QueryResult mapped = executor.Execute(req);
  ASSERT_TRUE(owned.status.ok());
  ASSERT_TRUE(mapped.status.ok());
  EXPECT_EQ(executor.execution_count(), 2u);
  EXPECT_EQ(owned.graph_version, mapped.graph_version);
  EXPECT_EQ(owned.summary.digest, mapped.summary.digest);
  EXPECT_EQ(owned.summary.count, mapped.summary.count);
}

/// Acceptance criterion: loading the largest generator config from a
/// binary snapshot is measurably faster than parsing the text format.
TEST(SnapshotSpeedTest, SnapshotLoadsFasterThanTextParse) {
  // The largest generator config exercised in tests: ~100k edges.
  const BipartiteGraph g = MakeUniformRandom(20000, 20000, 100000, 4, 3);
  const std::string attr_path = ::testing::TempDir() + "/speed.fbg";
  const std::string snap_path = ::testing::TempDir() + "/speed.snap";
  ASSERT_TRUE(WriteAttributedGraph(g, attr_path).ok());
  ASSERT_TRUE(WriteSnapshot(g, snap_path).ok());

  // Best-of-3 per loader to damp scheduler/page-cache noise; the text
  // parser does per-token integer parsing, the snapshot loader six bulk
  // reads, so the gap is large (>5x) and the assertion has headroom.
  double text_seconds = 1e9;
  double snap_seconds = 1e9;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t1;
    auto parsed = ReadAttributedGraph(attr_path);
    ASSERT_TRUE(parsed.ok());
    text_seconds = std::min(text_seconds, t1.ElapsedSeconds());

    Timer t2;
    auto loaded = ReadSnapshot(snap_path);
    ASSERT_TRUE(loaded.ok());
    snap_seconds = std::min(snap_seconds, t2.ElapsedSeconds());

    if (rep == 0) {
      EXPECT_EQ(GraphFingerprint(parsed.value()),
                GraphFingerprint(loaded.value()));
    }
  }
  EXPECT_LT(snap_seconds, text_seconds)
      << "snapshot load " << snap_seconds << "s vs text parse "
      << text_seconds << "s";
}

// --- async completion-list single-flight ------------------------------------

unsigned CountProcessThreads() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<unsigned>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

/// Acceptance criterion: duplicate queries registered through
/// ExecuteAsync park as completion callbacks, not blocked threads — the
/// process thread count stays fixed while N duplicates are in flight,
/// and an unrelated query still completes on the free runner.
TEST(QueryExecutorAsyncTest, DuplicatesParkAsCompletionsNotThreads) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;  // one for the blocked leader, one free.
  QueryExecutor executor(catalog, options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  executor.SetExecuteHook([&](const QueryRequest& req) {
    if (req.params.alpha != 9) return;
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  QueryRequest blocked;
  blocked.graph = "g";
  blocked.params = {9, 2, 1, 0.0};

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::vector<QueryResult> results;
  auto collect = [&](QueryResult r) {
    std::lock_guard<std::mutex> lock(done_mu);
    results.push_back(std::move(r));
    done_cv.notify_all();
  };

  constexpr unsigned kDuplicates = 8;
  executor.ExecuteAsync(blocked, collect);  // leader
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const unsigned threads_before = CountProcessThreads();
  ASSERT_GT(threads_before, 0u);

  for (unsigned i = 1; i < kDuplicates; ++i) {
    executor.ExecuteAsync(blocked, collect);  // parked waiters
  }
  EXPECT_EQ(executor.async_pending(), kDuplicates);
  // Every duplicate is registered, none holds a thread: the count is
  // exactly what it was with only the leader running.
  EXPECT_EQ(CountProcessThreads(), threads_before);

  // The second runner is idle, not parked on the leader: an unrelated
  // query completes end-to-end while all 8 duplicates are in flight.
  QueryRequest other;
  other.graph = "g";
  other.params = {2, 2, 1, 0.0};
  {
    std::mutex m2;
    std::condition_variable cv2;
    bool other_done = false;
    QueryResult other_result;
    executor.ExecuteAsync(other, [&](QueryResult r) {
      std::lock_guard<std::mutex> lock(m2);
      other_result = std::move(r);
      other_done = true;
      cv2.notify_one();
    });
    std::unique_lock<std::mutex> lock(m2);
    ASSERT_TRUE(cv2.wait_for(lock, std::chrono::seconds(30),
                             [&] { return other_done; }));
    EXPECT_TRUE(other_result.status.ok());
  }
  EXPECT_EQ(entered.load(), 1) << "duplicates must not have executed";

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    ASSERT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return results.size() == kDuplicates;
    }));
  }
  unsigned coalesced = 0;
  for (const QueryResult& r : results) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.summary.digest, results[0].summary.digest);
    coalesced += r.coalesced ? 1 : 0;
  }
  EXPECT_EQ(coalesced, kDuplicates - 1);
  // One run for the blocked key, one for the unrelated query.
  EXPECT_EQ(executor.execution_count(), 2u);
  EXPECT_EQ(executor.coalesced_count(), kDuplicates - 1);
  EXPECT_EQ(executor.async_pending(), 0u);
  executor.SetExecuteHook(nullptr);
}

/// A budget-limited leader publishes nothing reusable; parked waiters
/// are re-admitted instead of being handed the partial summary.
TEST(QueryExecutorAsyncTest, PartialLeaderReadmitsItsWaiters) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutorOptions options;
  options.num_threads = 2;
  QueryExecutor executor(catalog, options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> calls{0};
  executor.SetExecuteHook([&](const QueryRequest& req) {
    if (req.params.alpha != 5) return;
    if (calls.fetch_add(1) != 0) return;  // only the first run stalls.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  // Leader carries a 1-node budget: guaranteed partial on this graph.
  QueryRequest partial;
  partial.graph = "g";
  partial.params = {5, 2, 1, 0.0};
  partial.options.node_budget = 1;

  std::mutex done_mu;
  std::condition_variable done_cv;
  QueryResult leader_result, waiter_result;
  bool leader_done = false, waiter_done = false;
  executor.ExecuteAsync(partial, [&](QueryResult r) {
    std::lock_guard<std::mutex> lock(done_mu);
    leader_result = std::move(r);
    leader_done = true;
    done_cv.notify_all();
  });
  while (calls.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The unbudgeted duplicate parks behind the leader (same cache key:
  // budgets are excluded from the canonical key).
  QueryRequest full = partial;
  full.options.node_budget = 0;
  executor.ExecuteAsync(full, [&](QueryResult r) {
    std::lock_guard<std::mutex> lock(done_mu);
    waiter_result = std::move(r);
    waiter_done = true;
    done_cv.notify_all();
  });
  EXPECT_EQ(executor.async_pending(), 2u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  {
    std::unique_lock<std::mutex> lock(done_mu);
    ASSERT_TRUE(done_cv.wait_for(lock, std::chrono::seconds(30), [&] {
      return leader_done && waiter_done;
    }));
  }

  ASSERT_TRUE(leader_result.status.ok());
  EXPECT_TRUE(leader_result.summary.stats.budget_exhausted);
  ASSERT_TRUE(waiter_result.status.ok());
  // The waiter was re-admitted and ran the query itself, to completion.
  EXPECT_FALSE(waiter_result.coalesced);
  EXPECT_FALSE(waiter_result.summary.stats.budget_exhausted);
  EXPECT_GE(waiter_result.summary.count, leader_result.summary.count);
  EXPECT_EQ(executor.execution_count(), 2u);

  // Only the full run was cached.
  QueryResult replay = executor.Execute(full);
  EXPECT_TRUE(replay.cache_hit);
  EXPECT_FALSE(replay.summary.stats.budget_exhausted);
  executor.SetExecuteHook(nullptr);
}

/// Cache hits complete the async path inline on the calling thread — no
/// runner round-trip for served-from-cache queries.
TEST(QueryExecutorAsyncTest, CacheHitsCompleteInline) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.AddGraph("g", ServiceTestGraph()).ok());
  QueryExecutor executor(catalog, {});

  QueryRequest req;
  req.graph = "g";
  req.params = {2, 2, 1, 0.0};
  ASSERT_TRUE(executor.Execute(req).status.ok());

  const std::thread::id caller = std::this_thread::get_id();
  bool done_inline = false;
  executor.ExecuteAsync(req, [&](QueryResult r) {
    EXPECT_TRUE(r.cache_hit);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    done_inline = true;
  });
  EXPECT_TRUE(done_inline) << "cache hits must not bounce via the pool";

  // Unknown graphs fail inline the same way.
  QueryRequest missing;
  missing.graph = "nope";
  bool failed_inline = false;
  executor.ExecuteAsync(missing, [&](QueryResult r) {
    EXPECT_FALSE(r.status.ok());
    failed_inline = true;
  });
  EXPECT_TRUE(failed_inline);
}

}  // namespace
}  // namespace fairbc
