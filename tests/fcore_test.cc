#include <gtest/gtest.h>

#include "core/fcore.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::MakeGraph;
using ::fairbc::testing::RandomSmallGraph;

TEST(FCore, RemovesLowAttrDegreeUppers) {
  // u0 sees two class-0 and two class-1 lowers; u1 sees only class 0.
  BipartiteGraph g = MakeGraph(
      2, 4, {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 1}},
      {0, 0}, {0, 0, 1, 1});
  SideMasks masks = FCore(g, /*alpha=*/1, /*beta=*/1);
  EXPECT_TRUE(masks.upper_alive[0]);
  EXPECT_FALSE(masks.upper_alive[1]);  // no class-1 neighbor.
}

TEST(FCore, RemovesLowDegreeLowersAndCascades) {
  // Chain: removing the weak lower vertex kills the upper that depended
  // on it for class balance.
  BipartiteGraph g = MakeGraph(
      3, 4,
      {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}, {1, 1}, {1, 2}, {1, 3},
       {2, 3}},
      {0, 0, 0}, {0, 1, 0, 1});
  // alpha=3: v3 has degree 3 (kept), v0..v2 degree 2 (removed) -> uppers
  // lose all class-0 neighbors -> everything dies.
  SideMasks masks = FCore(g, /*alpha=*/3, /*beta=*/1);
  EXPECT_EQ(masks.CountAlive(Side::kUpper), 0u);
  EXPECT_EQ(masks.CountAlive(Side::kLower), 0u);
}

TEST(FCore, KeepsSatisfiedCore) {
  // Complete 3x4 biclique with balanced lower attributes survives.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(3, 4, edges, {0, 1, 0}, {0, 1, 0, 1});
  SideMasks masks = FCore(g, /*alpha=*/3, /*beta=*/2);
  EXPECT_EQ(masks.CountAlive(Side::kUpper), 3u);
  EXPECT_EQ(masks.CountAlive(Side::kLower), 4u);
}

TEST(FCore, AlphaBetaZeroKeepsEverything) {
  BipartiteGraph g = RandomSmallGraph(3, 8, 0.3);
  SideMasks masks = FCore(g, 0, 0);
  EXPECT_EQ(masks.CountAlive(Side::kUpper), g.NumUpper());
  EXPECT_EQ(masks.CountAlive(Side::kLower), g.NumLower());
}

TEST(FCore, MatchesNaiveFixpointOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.35);
    for (std::uint32_t alpha : {1u, 2u, 3u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        SideMasks fast = FCore(g, alpha, beta);
        SideMasks slow = FCoreNaive(g, alpha, beta, /*bi_side=*/false);
        EXPECT_EQ(fast.upper_alive, slow.upper_alive)
            << "seed=" << seed << " a=" << alpha << " b=" << beta;
        EXPECT_EQ(fast.lower_alive, slow.lower_alive)
            << "seed=" << seed << " a=" << alpha << " b=" << beta;
      }
    }
  }
}

TEST(BFCore, MatchesNaiveFixpointOnRandomGraphs) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.35);
    for (std::uint32_t alpha : {1u, 2u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        SideMasks fast = BFCore(g, alpha, beta);
        SideMasks slow = FCoreNaive(g, alpha, beta, /*bi_side=*/true);
        EXPECT_EQ(fast.upper_alive, slow.upper_alive)
            << "seed=" << seed << " a=" << alpha << " b=" << beta;
        EXPECT_EQ(fast.lower_alive, slow.lower_alive)
            << "seed=" << seed << " a=" << alpha << " b=" << beta;
      }
    }
  }
}

TEST(BFCore, PrunesAtLeastAsMuchAsFCore) {
  // BFCore's lower-side condition (per-class degree >= alpha) is stronger
  // than FCore's (total degree >= alpha).
  for (std::uint64_t seed = 200; seed < 215; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.4);
    SideMasks f = FCore(g, 2, 2);
    SideMasks b = BFCore(g, 2, 2);
    for (VertexId u = 0; u < g.NumUpper(); ++u) {
      EXPECT_LE(b.upper_alive[u], f.upper_alive[u]);
    }
    for (VertexId v = 0; v < g.NumLower(); ++v) {
      EXPECT_LE(b.lower_alive[v], f.lower_alive[v]);
    }
  }
}

TEST(FCoreInPlace, RespectsInitialMask) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  BipartiteGraph g = MakeGraph(3, 4, edges, {0, 1, 0}, {0, 1, 0, 1});
  SideMasks masks;
  masks.upper_alive = {1, 1, 1};
  masks.lower_alive = {1, 1, 0, 1};  // v2 (class 0) pre-removed.
  FCoreInPlace(g, /*alpha=*/3, /*beta=*/2, masks);
  // With v2 gone, class 0 has only v0: beta=2 unreachable -> all removed.
  EXPECT_EQ(masks.CountAlive(Side::kUpper), 0u);
  EXPECT_FALSE(masks.lower_alive[2]);
}

TEST(FCore, EmptyGraph) {
  BipartiteGraph g;
  SideMasks masks = FCore(g, 1, 1);
  EXPECT_TRUE(masks.upper_alive.empty());
  EXPECT_TRUE(masks.lower_alive.empty());
}

}  // namespace
}  // namespace fairbc
