#include <gtest/gtest.h>

#include "core/bruteforce.h"
#include "core/cfcore.h"
#include "core/fcore.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::RandomSmallGraph;

TEST(EgoColorfulCorePeel, KeepsBalancedClique) {
  // A 4-clique with 2 vertices per class: all colors distinct, every
  // vertex has ego colorful degree 2 per class -> survives k=2.
  UnipartiteGraph h = UnipartiteGraph::FromEdges(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}, {0, 0, 1, 1}, 2);
  std::vector<char> alive(4, 1);
  Coloring c = GreedyColor(h, alive);
  EgoColorfulCorePeel(h, c, 2, alive, nullptr);
  EXPECT_EQ(std::count(alive.begin(), alive.end(), 1), 4);
}

TEST(EgoColorfulCorePeel, RemovesClassStarved) {
  // Star around 0; vertex 0 has class-1 neighbors but leaves have only
  // class-0 contacts (plus themselves).
  UnipartiteGraph h = UnipartiteGraph::FromEdges(
      4, {{0, 1}, {0, 2}, {0, 3}}, {0, 1, 1, 1}, 2);
  std::vector<char> alive(4, 1);
  Coloring c = GreedyColor(h, alive);
  EgoColorfulCorePeel(h, c, 2, alive, nullptr);
  // Every vertex lacks 2 distinct colors in some class -> all peeled.
  EXPECT_EQ(std::count(alive.begin(), alive.end(), 1), 0);
}

TEST(EgoColorfulCorePeel, MetersBytes) {
  UnipartiteGraph h = UnipartiteGraph::FromEdges(2, {{0, 1}}, {0, 1}, 2);
  std::vector<char> alive(2, 1);
  Coloring c = GreedyColor(h, alive);
  std::size_t bytes = 0;
  EgoColorfulCorePeel(h, c, 1, alive, &bytes);
  EXPECT_GT(bytes, 0u);
}

TEST(CFCore, PrunesAtLeastAsMuchAsFCore) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.4);
    for (std::uint32_t alpha : {1u, 2u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        SideMasks f = FCore(g, alpha, beta);
        PruneResult c = CFCore(g, alpha, beta);
        for (VertexId u = 0; u < g.NumUpper(); ++u) {
          EXPECT_LE(c.masks.upper_alive[u], f.upper_alive[u]) << "seed=" << seed;
        }
        for (VertexId v = 0; v < g.NumLower(); ++v) {
          EXPECT_LE(c.masks.lower_alive[v], f.lower_alive[v]) << "seed=" << seed;
        }
      }
    }
  }
}

// Lossless-ness (Lemmas 1 and 2): every vertex of every SSFBC survives
// CFCore; every vertex of every BSFBC survives BCFCore.
TEST(CFCore, LosslessForSSFBC) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 8, 0.5);
    for (std::uint32_t alpha : {1u, 2u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        FairBicliqueParams params{alpha, beta, 1, 0.0};
        PruneResult pr = CFCore(g, alpha, beta);
        for (const Biclique& b : BruteForceSSFBC(g, params)) {
          for (VertexId u : b.upper) {
            EXPECT_TRUE(pr.masks.upper_alive[u])
                << "seed=" << seed << " a=" << alpha << " b=" << beta << " "
                << b.DebugString();
          }
          for (VertexId v : b.lower) {
            EXPECT_TRUE(pr.masks.lower_alive[v])
                << "seed=" << seed << " a=" << alpha << " b=" << beta << " "
                << b.DebugString();
          }
        }
      }
    }
  }
}

TEST(BCFCore, LosslessForBSFBC) {
  for (std::uint64_t seed = 50; seed < 90; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 7, 0.55);
    for (std::uint32_t alpha : {1u, 2u}) {
      for (std::uint32_t beta : {1u, 2u}) {
        FairBicliqueParams params{alpha, beta, 1, 0.0};
        PruneResult pr = BCFCore(g, alpha, beta);
        for (const Biclique& b : BruteForceBSFBC(g, params)) {
          for (VertexId u : b.upper) {
            EXPECT_TRUE(pr.masks.upper_alive[u])
                << "seed=" << seed << " a=" << alpha << " b=" << beta << " "
                << b.DebugString();
          }
          for (VertexId v : b.lower) {
            EXPECT_TRUE(pr.masks.lower_alive[v])
                << "seed=" << seed << " a=" << alpha << " b=" << beta << " "
                << b.DebugString();
          }
        }
      }
    }
  }
}

TEST(BCFCore, PrunesAtLeastAsMuchAsBFCore) {
  for (std::uint64_t seed = 300; seed < 315; ++seed) {
    BipartiteGraph g = RandomSmallGraph(seed, 12, 0.4);
    SideMasks f = BFCore(g, 2, 2);
    PruneResult c = BCFCore(g, 2, 2);
    for (VertexId u = 0; u < g.NumUpper(); ++u) {
      EXPECT_LE(c.masks.upper_alive[u], f.upper_alive[u]);
    }
    for (VertexId v = 0; v < g.NumLower(); ++v) {
      EXPECT_LE(c.masks.lower_alive[v], f.lower_alive[v]);
    }
  }
}

TEST(CFCore, EmptyGraph) {
  BipartiteGraph g;
  PruneResult pr = CFCore(g, 2, 2);
  EXPECT_TRUE(pr.masks.upper_alive.empty());
}

}  // namespace
}  // namespace fairbc
