#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace fairbc {
namespace {

TEST(Counter, CountsAndResets) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_total", "help");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(Counter, RegistrationIsIdempotent) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("t_total", "help");
  Counter* b = registry.GetCounter("t_total", "help");
  EXPECT_EQ(a, b);
  // Same family, different labels: distinct series.
  Counter* x = registry.GetCounter("t_total", "help", "k=\"1\"");
  Counter* y = registry.GetCounter("t_total", "help", "k=\"2\"");
  EXPECT_NE(x, y);
  EXPECT_NE(a, x);
  EXPECT_EQ(x, registry.GetCounter("t_total", "help", "k=\"1\""));
}

// Shard aggregation must be EXACT once writers are quiescent: every
// increment from every thread lands in some shard and Value() sums all
// shards — no sampling, no loss.
TEST(Counter, MultiThreadedAggregationIsExact) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("mt_total", "help");
  Gauge* g = registry.GetGauge("mt_gauge", "help");
  constexpr unsigned kThreads = 31;  // deliberately != kMetricShards
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Increment();
        if (i % 2 == 0) g->Decrement();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
  EXPECT_EQ(g->Value(),
            static_cast<std::int64_t>(kThreads * (kPerThread / 2)));
}

TEST(Histogram, BucketLayout) {
  // Bounds are 2^i microseconds; an observation lands in the first
  // bucket whose bound is >= the value.
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.5e-6), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1e-6), 0u);     // == bound 0
  EXPECT_EQ(Histogram::BucketIndex(1.5e-6), 1u);   // (1us, 2us]
  EXPECT_EQ(Histogram::BucketIndex(2e-6), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3e-6), 2u);     // (2us, 4us]
  EXPECT_EQ(Histogram::BucketIndex(1e-3), 10u);    // 1024us bound
  EXPECT_EQ(Histogram::BucketIndex(1.0), 20u);     // 2^20us ~ 1.05s
  EXPECT_EQ(Histogram::BucketIndex(1e9), Histogram::kFiniteBounds);
  for (unsigned i = 0; i + 1 < Histogram::kFiniteBounds; ++i) {
    EXPECT_LT(Histogram::BucketBoundSeconds(i),
              Histogram::BucketBoundSeconds(i + 1));
    // Each bound maps into its own bucket (bounds are inclusive).
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketBoundSeconds(i)), i);
  }
}

TEST(Histogram, SumAndCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("t_seconds", "help");
  h->Observe(0.5);
  h->Observe(0.25);
  h->Observe(0.25);
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_NEAR(snap.sum_seconds, 1.0, 1e-6);
}

// Percentiles against a sorted-vector oracle. The histogram quantile
// returns the upper bound of the bucket holding the rank-th sample, so
// it must equal BucketBoundSeconds(BucketIndex(oracle_value)) exactly —
// "within one bucket" of the true value by construction.
TEST(Histogram, QuantileMatchesSortedVectorOracle) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("t_seconds", "help");
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    // Latencies spanning ~6 decades: 100ns .. 100ms, log-uniform-ish.
    const double exponent = -7.0 + 6.0 * rng.NextDouble();
    const double seconds = std::pow(10.0, exponent);
    samples.push_back(seconds);
    h->Observe(seconds);
  }
  std::sort(samples.begin(), samples.end());
  const auto snap = h->snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double oracle = samples[rank == 0 ? 0 : rank - 1];
    const double estimate = snap.Quantile(q);
    EXPECT_EQ(estimate,
              Histogram::BucketBoundSeconds(Histogram::BucketIndex(oracle)))
        << "q=" << q << " oracle=" << oracle;
    // And the bound property that makes the estimate usable: the true
    // value is inside (estimate/2, estimate].
    EXPECT_GE(estimate, oracle);
    EXPECT_LT(estimate / 2.0, oracle);
  }
}

TEST(Histogram, QuantileEdgeCases) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("t_seconds", "help");
  EXPECT_EQ(h->snapshot().Quantile(0.5), 0.0);  // empty
  h->Observe(3e-6);
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.Quantile(0.0), snap.Quantile(1.0));
  EXPECT_EQ(snap.Quantile(0.5), 4e-6);
}

// Golden exposition: families in registration order, HELP/TYPE once per
// family, cumulative histogram buckets with _sum and _count.
TEST(MetricsRegistry, PrometheusGolden) {
  MetricsRegistry registry;
  Counter* queries = registry.GetCounter("app_queries_total",
                                         "Queries admitted.");
  Counter* busy = registry.GetCounter("app_errors_total", "Typed errors.",
                                      "code=\"busy\"");
  Counter* huge = registry.GetCounter("app_errors_total", "Typed errors.",
                                      "code=\"too_large\"");
  Gauge* conns = registry.GetGauge("app_connections", "Live connections.");
  Histogram* lat = registry.GetHistogram("app_seconds", "Latency.",
                                         "phase=\"run\"");
  queries->Increment(3);
  busy->Increment(2);
  huge->Increment();
  conns->Add(5);
  conns->Decrement();
  lat->Observe(1.5e-6);  // bucket le=2e-06
  lat->Observe(3e-6);    // bucket le=4e-06

  const std::string text = registry.PrometheusText();
  const std::string expected_head =
      "# HELP app_queries_total Queries admitted.\n"
      "# TYPE app_queries_total counter\n"
      "app_queries_total 3\n"
      "# HELP app_errors_total Typed errors.\n"
      "# TYPE app_errors_total counter\n"
      "app_errors_total{code=\"busy\"} 2\n"
      "app_errors_total{code=\"too_large\"} 1\n"
      "# HELP app_connections Live connections.\n"
      "# TYPE app_connections gauge\n"
      "app_connections 4\n"
      "# HELP app_seconds Latency.\n"
      "# TYPE app_seconds histogram\n";
  ASSERT_EQ(text.compare(0, expected_head.size(), expected_head), 0)
      << text;
  // Histogram series: cumulative buckets, +Inf, sum, count.
  EXPECT_NE(text.find("app_seconds_bucket{phase=\"run\",le=\"1e-06\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("app_seconds_bucket{phase=\"run\",le=\"2e-06\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_bucket{phase=\"run\",le=\"4e-06\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_bucket{phase=\"run\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_count{phase=\"run\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_seconds_sum{phase=\"run\"} "), std::string::npos);
}

// Disabled registries swallow every update (the FAIRBC_OBS_OFF path).
TEST(MetricsRegistry, DisabledUpdatesAreNoOps) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t_total", "help");
  Histogram* h = registry.GetHistogram("t_seconds", "help");
  registry.set_enabled(false);
  c->Increment();
  h->Observe(1.0);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->snapshot().count, 0u);
  registry.set_enabled(true);
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

// Scrape-under-load: PrometheusText while writers hammer every metric
// kind. Run under TSan in CI; also checks final exactness.
TEST(MetricsRegistry, ScrapeUnderLoad) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("load_total", "help");
  Gauge* g = registry.GetGauge("load_gauge", "help");
  Histogram* h = registry.GetHistogram("load_seconds", "help");
  std::atomic<bool> stop{false};
  constexpr unsigned kWriters = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        g->Add(i % 2 == 0 ? 1 : -1);
        h->Observe(static_cast<double>((t + 1) * (i % 64)) * 1e-6);
      }
    });
  }
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = registry.PrometheusText();
      EXPECT_NE(text.find("load_total"), std::string::npos);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(c->Value(), kWriters * kPerThread);
  EXPECT_EQ(h->snapshot().count, kWriters * kPerThread);
}

}  // namespace
}  // namespace fairbc
