#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "graph/generators.h"
#include "test_util.h"

namespace fairbc {
namespace {

using ::fairbc::testing::Canonicalize;
using ::fairbc::testing::RandomSmallGraph;

TEST(Pipeline, StatsSplitPruneAndEnumTime) {
  BipartiteGraph g = MakeUniformRandom(300, 300, 2500, 2, 5);
  FairBicliqueParams params{2, 2, 1, 0.0};
  CountSink sink;
  EnumStats stats = EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
  EXPECT_GE(stats.prune_seconds, 0.0);
  EXPECT_GE(stats.enum_seconds, 0.0);
  EXPECT_LE(stats.remaining_upper, g.NumUpper());
}

TEST(Pipeline, MemoryMeterPopulatedWithColorfulPruning) {
  AffiliationConfig config;
  config.num_upper = 150;
  config.num_lower = 150;
  config.num_communities = 12;
  config.seed = 31;
  BipartiteGraph g = MakeAffiliation(config);
  FairBicliqueParams params{2, 2, 1, 0.0};
  CountSink sink;
  EnumStats stats = EnumerateSSFBCPlusPlus(g, params, {}, sink.AsSink());
  // The CFCore 2-hop graph + color matrices must be accounted.
  EXPECT_GT(stats.peak_struct_bytes, 0u);
}

TEST(Pipeline, MaximalBicliquesPruned) {
  BipartiteGraph g = RandomSmallGraph(17, 10, 0.5);
  CollectSink sink;
  EnumStats stats =
      EnumerateMaximalBicliquesPruned(g, 2, 2, {}, sink.AsSink());
  EXPECT_EQ(stats.num_results, sink.results().size());
  for (const Biclique& b : sink.results()) {
    EXPECT_GE(b.upper.size(), 2u);
    EXPECT_GE(b.lower.size(), 2u);
    for (VertexId u : b.upper) {
      for (VertexId v : b.lower) EXPECT_TRUE(g.HasEdge(u, v));
    }
  }
}

TEST(Pipeline, TimeBudgetPropagates) {
  BipartiteGraph g = MakeUniformRandom(500, 500, 20000, 2, 9);
  FairBicliqueParams params{1, 1, 3, 0.0};
  EnumOptions options;
  options.time_budget_seconds = 1e-6;
  CountSink sink;
  EnumStats stats = EnumerateSSFBCNaive(g, params, options, sink.AsSink());
  EXPECT_TRUE(stats.budget_exhausted);
}

TEST(Pipeline, SinkAbortIsHonored) {
  BipartiteGraph g = RandomSmallGraph(23, 12, 0.5);
  FairBicliqueParams params{1, 1, 2, 0.0};
  std::uint64_t seen = 0;
  EnumerateSSFBCPlusPlus(g, params, {}, [&](const Biclique&) {
    ++seen;
    return false;
  });
  EXPECT_LE(seen, 1u);
}

TEST(Pipeline, OrderingsAgreeOnResultSet) {
  BipartiteGraph g = MakeUniformRandom(120, 120, 1200, 2, 41);
  FairBicliqueParams params{2, 2, 1, 0.0};
  EnumOptions id_ord, deg_ord;
  id_ord.ordering = VertexOrdering::kId;
  deg_ord.ordering = VertexOrdering::kDegreeDesc;
  CollectSink a, b;
  EnumerateSSFBCPlusPlus(g, params, id_ord, a.AsSink());
  EnumerateSSFBCPlusPlus(g, params, deg_ord, b.AsSink());
  EXPECT_EQ(Canonicalize(a.results()), Canonicalize(b.results()));
}

}  // namespace
}  // namespace fairbc
