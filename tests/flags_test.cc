#include <gtest/gtest.h>

#include "common/flags.h"

namespace fairbc {
namespace {

FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(parser.Parse(static_cast<int>(args.size()), args.data()).ok());
  return parser;
}

TEST(Flags, EqualsSyntax) {
  FlagParser p = Parse({"--alpha=3", "--theta=0.4", "--name=imdb"});
  EXPECT_EQ(p.GetInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(p.GetDouble("theta", 0.0), 0.4);
  EXPECT_EQ(p.GetString("name", ""), "imdb");
}

TEST(Flags, SpaceSyntax) {
  FlagParser p = Parse({"--alpha", "5", "--name", "wiki"});
  EXPECT_EQ(p.GetInt("alpha", 0), 5);
  EXPECT_EQ(p.GetString("name", ""), "wiki");
}

TEST(Flags, BareFlagIsTrue) {
  FlagParser p = Parse({"--verbose", "--count-only"});
  EXPECT_TRUE(p.GetBool("verbose", false));
  EXPECT_TRUE(p.GetBool("count-only", false));
  EXPECT_FALSE(p.GetBool("missing", false));
}

TEST(Flags, BoolSpellings) {
  FlagParser p = Parse({"--a=true", "--b=1", "--c=yes", "--d=false", "--e=0"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
  EXPECT_FALSE(p.GetBool("e", true));
}

TEST(Flags, Positionals) {
  FlagParser p = Parse({"enum", "--alpha=1", "input.txt"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "enum");
  EXPECT_EQ(p.positional()[1], "input.txt");
}

TEST(Flags, DefaultsOnMissingAndMalformed) {
  FlagParser p = Parse({"--alpha=notanumber", "--theta=xyz"});
  EXPECT_EQ(p.GetInt("alpha", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("theta", 0.25), 0.25);
  EXPECT_EQ(p.GetInt("absent", -1), -1);
}

TEST(Flags, NegativeIntegers) {
  FlagParser p = Parse({"--offset=-12"});
  EXPECT_EQ(p.GetInt("offset", 0), -12);
}

TEST(Flags, HasAndUnused) {
  FlagParser p = Parse({"--used=1", "--typo=2"});
  EXPECT_TRUE(p.Has("used"));
  auto unused = p.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, RejectsBareDoubleDash) {
  const char* argv[] = {"prog", "--"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

TEST(Flags, RejectsEmptyName) {
  const char* argv[] = {"prog", "--=value"};
  FlagParser parser;
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

TEST(Flags, LastValueWins) {
  FlagParser p = Parse({"--alpha=1", "--alpha=2"});
  EXPECT_EQ(p.GetInt("alpha", 0), 2);
}

}  // namespace
}  // namespace fairbc
