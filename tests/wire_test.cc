// Unit tests of the binary wire codec (service/wire.h): header/frame
// round-trips for every opcode, the packed query payload against the
// same validation windows as the line protocol, and — because a network
// decoder's inputs are hostile by definition — rejection paths for
// truncated, oversized and corrupted bytes, including a deterministic
// fuzz-style corruption loop that the ASan/UBSan CI job turns into a
// no-undefined-behavior proof.

#include "service/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "service/query.h"

namespace fairbc {
namespace wire {
namespace {

QueryRequest FullQuery() {
  QueryRequest req;
  req.graph = "paper-graph";
  req.model = FairModel::kBsfbc;
  req.algo = FairAlgo::kBcem;
  req.params.alpha = 3;
  req.params.beta = 7;
  req.params.delta = 2;
  req.params.theta = 0.25;
  req.options.ordering = VertexOrdering::kId;
  req.options.pruning = PruningLevel::kCore;
  req.options.time_budget_seconds = 1.5;
  req.options.node_budget = 123456789;
  req.options.num_threads = 16;
  req.use_cache = true;
  return req;
}

TEST(WireFrameTest, RoundTripsEveryOpcode) {
  const Opcode opcodes[] = {Opcode::kPing,  Opcode::kCommand, Opcode::kQuery,
                            Opcode::kPong,  Opcode::kReply,   Opcode::kError};
  for (Opcode op : opcodes) {
    Frame in;
    in.opcode = op;
    in.request_id = 0xDEADBEEFCAFE0001ull;
    in.payload = "payload for opcode " +
                 std::to_string(static_cast<unsigned>(op));
    std::string bytes;
    EncodeFrame(in, &bytes);
    ASSERT_EQ(bytes.size(), kHeaderBytes + in.payload.size());
    EXPECT_TRUE(LooksBinary(static_cast<unsigned char>(bytes[0])));

    Frame out;
    std::size_t consumed = 0;
    const DecodeResult decoded =
        DecodeFrame(bytes, /*max_payload=*/1 << 20, &out, &consumed);
    ASSERT_EQ(decoded.status, FrameStatus::kOk);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(out.version, kVersion);
    EXPECT_EQ(out.opcode, in.opcode);
    EXPECT_EQ(out.request_id, in.request_id);
    EXPECT_EQ(out.payload, in.payload);
  }
}

TEST(WireFrameTest, DecodesBackToBackFramesFromOneBuffer) {
  std::string bytes;
  for (int i = 0; i < 3; ++i) {
    Frame f;
    f.opcode = Opcode::kCommand;
    f.request_id = static_cast<std::uint64_t>(i + 1);
    f.payload = std::string(static_cast<std::size_t>(i) * 7, 'x');
    EncodeFrame(f, &bytes);
  }
  for (int i = 0; i < 3; ++i) {
    Frame out;
    std::size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes, 1 << 20, &out, &consumed).status,
              FrameStatus::kOk);
    EXPECT_EQ(out.request_id, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(out.payload.size(), static_cast<std::size_t>(i) * 7);
    bytes.erase(0, consumed);
  }
  EXPECT_TRUE(bytes.empty());
}

TEST(WireFrameTest, TruncatedPrefixesNeedMoreNeverCrash) {
  Frame in;
  in.opcode = Opcode::kQuery;
  in.request_id = 42;
  in.payload = EncodeQueryPayload(FullQuery());
  std::string bytes;
  EncodeFrame(in, &bytes);
  // Every strict prefix is either "need more" (valid so far) — never kOk,
  // never UB.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    Frame out;
    std::size_t consumed = 0;
    const DecodeResult decoded = DecodeFrame(
        std::string_view(bytes).substr(0, len), 1 << 20, &out, &consumed);
    EXPECT_EQ(decoded.status, FrameStatus::kNeedMore) << "prefix " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireFrameTest, RejectsBadMagicFromTheFirstBytes) {
  // A line-protocol client's first byte must be rejected immediately —
  // this is the negotiation property the shared port depends on.
  Frame out;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame("ping\n", 1 << 20, &out, &consumed).status,
            FrameStatus::kBad);
  // Right low byte, wrong high byte: provable at two bytes.
  std::string near;
  near.push_back(static_cast<char>(0xBC));
  near.push_back(static_cast<char>(0x00));
  EXPECT_EQ(DecodeFrame(near, 1 << 20, &out, &consumed).status,
            FrameStatus::kBad);
  for (unsigned char printable = 0x20; printable < 0x7F; ++printable) {
    EXPECT_FALSE(LooksBinary(printable)) << static_cast<int>(printable);
  }
  EXPECT_TRUE(LooksBinary(0xBC));
}

TEST(WireFrameTest, RejectsUnsupportedVersionAndUnknownOpcode) {
  Frame in;
  in.opcode = Opcode::kPing;
  in.request_id = 7;
  std::string bytes;
  EncodeFrame(in, &bytes);

  std::string bad_version = bytes;
  bad_version[2] = 9;
  Frame out;
  std::size_t consumed = 0;
  DecodeResult decoded = DecodeFrame(bad_version, 1 << 20, &out, &consumed);
  EXPECT_EQ(decoded.status, FrameStatus::kBad);
  EXPECT_EQ(decoded.code, ErrorCode::kUnsupportedVersion);

  std::string bad_opcode = bytes;
  bad_opcode[3] = 0x44;
  decoded = DecodeFrame(bad_opcode, 1 << 20, &out, &consumed);
  EXPECT_EQ(decoded.status, FrameStatus::kBad);
  EXPECT_EQ(decoded.code, ErrorCode::kBadFrame);
}

TEST(WireFrameTest, OversizedPayloadRejectedFromHeaderAlone) {
  // A hostile "4 GiB follow" length prefix must be refused before any
  // buffering decision — with ONLY the 16 header bytes on hand.
  std::string header;
  AppendU16(&header, kMagic);
  AppendU8(&header, kVersion);
  AppendU8(&header, static_cast<std::uint8_t>(Opcode::kCommand));
  AppendU64(&header, 1);
  AppendU32(&header, 0xFFFFFF00u);
  ASSERT_EQ(header.size(), kHeaderBytes);
  Frame out;
  std::size_t consumed = 0;
  const DecodeResult decoded = DecodeFrame(header, 1 << 20, &out, &consumed);
  EXPECT_EQ(decoded.status, FrameStatus::kBad);
  EXPECT_EQ(decoded.code, ErrorCode::kTooLarge);
}

TEST(WireFrameTest, FuzzStyleCorruptionNeverCrashesTheDecoder) {
  Frame in;
  in.opcode = Opcode::kQuery;
  in.request_id = 99;
  in.payload = EncodeQueryPayload(FullQuery());
  std::string pristine;
  EncodeFrame(in, &pristine);

  // Deterministic xorshift so failures reproduce; ASan/UBSan turn this
  // loop into a no-UB proof for arbitrary byte flips.
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 2000; ++round) {
    std::string bytes = pristine;
    const int flips = 1 + static_cast<int>(next() % 5);
    for (int f = 0; f < flips; ++f) {
      bytes[next() % bytes.size()] ^=
          static_cast<char>(1u << (next() % 8));
    }
    Frame out;
    std::size_t consumed = 0;
    const DecodeResult decoded = DecodeFrame(bytes, 1 << 20, &out, &consumed);
    if (decoded.status == FrameStatus::kOk) {
      // Flips confined to the payload decode fine as a frame; the
      // payload-level decoder must then also survive them.
      (void)DecodeQueryPayload(out.payload);
    }
  }
  // Pure random garbage, any length.
  for (int round = 0; round < 2000; ++round) {
    std::string bytes;
    const std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(next() & 0xFF));
    }
    Frame out;
    std::size_t consumed = 0;
    (void)DecodeFrame(bytes, 1 << 20, &out, &consumed);
  }
}

TEST(WireQueryPayloadTest, RoundTripsEveryField) {
  const QueryRequest in = FullQuery();
  auto decoded = DecodeQueryPayload(EncodeQueryPayload(in));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const QueryRequest& out = decoded.value();
  EXPECT_EQ(out.graph, in.graph);
  EXPECT_EQ(out.model, in.model);
  EXPECT_EQ(out.algo, in.algo);
  EXPECT_EQ(out.params.alpha, in.params.alpha);
  EXPECT_EQ(out.params.beta, in.params.beta);
  EXPECT_EQ(out.params.delta, in.params.delta);
  EXPECT_EQ(out.params.theta, in.params.theta);
  EXPECT_EQ(out.options.ordering, in.options.ordering);
  EXPECT_EQ(out.options.pruning, in.options.pruning);
  EXPECT_EQ(out.options.time_budget_seconds, in.options.time_budget_seconds);
  EXPECT_EQ(out.options.node_budget, in.options.node_budget);
  EXPECT_EQ(out.options.num_threads, in.options.num_threads);
  EXPECT_EQ(out.use_cache, in.use_cache);
}

TEST(WireQueryPayloadTest, EveryTruncationRejectsWithStatus) {
  const std::string full = EncodeQueryPayload(FullQuery());
  // The top_k/rank/request-id extension tail (u32 + u8 + u16 length +
  // empty id here) may be absent as a whole — that is a valid legacy
  // frame — but may not be cut mid-way.
  const std::size_t legacy = full.size() - (4 + 1 + 2);
  for (std::size_t len = 0; len < full.size(); ++len) {
    auto decoded = DecodeQueryPayload(full.substr(0, len));
    if (len == legacy) {
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded.value().top_k, 0u);  // tail absent = defaults.
      EXPECT_TRUE(decoded.value().request_id.empty());
      continue;
    }
    EXPECT_FALSE(decoded.ok()) << "truncation at " << len;
  }
  // Trailing bytes are just as corrupt as missing ones.
  EXPECT_FALSE(DecodeQueryPayload(full + "x").ok());
}

TEST(WireQueryPayloadTest, EnforcesTheLineProtocolsValidationWindows) {
  // Same [0, 1e9] / [0, 1] / [0, 1024] windows as BuildQueryRequest: the
  // two front doors must accept and reject the same requests.
  QueryRequest req = FullQuery();
  req.params.alpha = 1'000'000'001;
  EXPECT_FALSE(DecodeQueryPayload(EncodeQueryPayload(req)).ok());
  req = FullQuery();
  req.params.theta = 1.5;
  EXPECT_FALSE(DecodeQueryPayload(EncodeQueryPayload(req)).ok());
  req = FullQuery();
  req.params.theta = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(DecodeQueryPayload(EncodeQueryPayload(req)).ok());
  req = FullQuery();
  req.options.time_budget_seconds = -1.0;
  EXPECT_FALSE(DecodeQueryPayload(EncodeQueryPayload(req)).ok());
  req = FullQuery();
  req.options.num_threads = 2000;
  EXPECT_FALSE(DecodeQueryPayload(EncodeQueryPayload(req)).ok());
  req = FullQuery();
  req.graph.clear();
  EXPECT_FALSE(DecodeQueryPayload(EncodeQueryPayload(req)).ok());

  // Unknown enum bytes (offsets: u16 len + graph, then model, algo).
  const std::string base = EncodeQueryPayload(FullQuery());
  const std::size_t model_off = 2 + FullQuery().graph.size();
  std::string bad = base;
  bad[model_off] = 9;
  EXPECT_FALSE(DecodeQueryPayload(bad).ok());
  bad = base;
  bad[model_off + 1] = 9;
  EXPECT_FALSE(DecodeQueryPayload(bad).ok());
}

TEST(WireErrorPayloadTest, RoundTripsAndRejectsShortPayloads) {
  const std::string payload =
      EncodeErrorPayload(ErrorCode::kBusy, "server busy: max-inflight=256");
  ErrorCode code;
  std::string message;
  ASSERT_TRUE(DecodeErrorPayload(payload, &code, &message).ok());
  EXPECT_EQ(code, ErrorCode::kBusy);
  EXPECT_EQ(message, "server busy: max-inflight=256");
  EXPECT_STREQ(ToString(code), "busy");

  EXPECT_FALSE(DecodeErrorPayload("", &code, &message).ok());
  EXPECT_FALSE(DecodeErrorPayload("x", &code, &message).ok());
}

TEST(WireReaderTest, BoundsCheckedReadsNeverOverrun) {
  std::string buf;
  AppendU32(&buf, 0x01020304u);
  Reader r(buf);
  std::uint64_t v64 = 0;
  EXPECT_FALSE(r.ReadU64(&v64));  // 4 bytes cannot satisfy 8.
  std::uint32_t v32 = 0;
  EXPECT_TRUE(r.ReadU32(&v32));
  EXPECT_EQ(v32, 0x01020304u);
  std::uint8_t v8 = 0;
  EXPECT_FALSE(r.ReadU8(&v8));  // exhausted.
  EXPECT_TRUE(r.AtEnd());

  // String16 whose length prefix overruns the buffer.
  std::string s;
  AppendU16(&s, 100);
  s += "short";
  Reader r2(s);
  std::string out;
  EXPECT_FALSE(r2.ReadString16(&out));
}

}  // namespace
}  // namespace wire
}  // namespace fairbc
