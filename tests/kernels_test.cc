// Property tests for the adaptive set-intersection kernels
// (core/kernels.h): every kernel — forced merge/gallop/bitset, the
// adaptive dispatchers, and the fused attribute-counting variant — must
// match the std::set_intersection oracle on randomized and adversarial
// inputs. Also covers the ScratchArena stack discipline, the arena-backed
// containers, BitsetView, the allocation-free recursion contract, and an
// 8-worker engine run for the sanitizer suites.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <vector>

#include "core/kernels.h"
#include "core/pipeline.h"
#include "test_util.h"

// The replacement operators below pair ::operator new with
// std::malloc/std::free, which GCC flags when it inlines both sides of a
// new/delete pair in this TU; the pairing is intentional and consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

// Global allocation counter for the allocation-free recursion test. The
// overrides count every heap allocation made by the test binary; tests
// read the counter before/after a code region.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fairbc {
namespace {

using ::fairbc::testing::RandomSmallGraph;

std::vector<VertexId> Oracle(const std::vector<VertexId>& a,
                             const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

// Sorted duplicate-free set of `n` ids with mean gap `mean_gap`, starting
// at `base` (lets tests park sets near the top of the id space).
std::vector<VertexId> RandomSet(std::mt19937& rng, std::size_t n,
                                std::uint32_t mean_gap, VertexId base = 0) {
  std::uniform_int_distribution<std::uint32_t> gap(
      1, mean_gap > 1 ? 2 * mean_gap - 1 : 1);
  std::vector<VertexId> v(n);
  VertexId cur = base;
  for (std::size_t i = 0; i < n; ++i) {
    cur += gap(rng);
    v[i] = cur;
  }
  return v;
}

// Runs every kernel on (a, b) and checks each against the oracle.
// `check_bitset` is off for inputs whose overlap window is so wide that
// the forced bitset kernel would pack gigabytes (the adaptive dispatch
// never picks it there; the forced entry point trusts its caller).
void ExpectAllKernelsMatch(const std::vector<VertexId>& a,
                           const std::vector<VertexId>& b,
                           bool check_bitset = true) {
  const std::vector<VertexId> want = Oracle(a, b);
  const std::size_t cap = std::min(a.size(), b.size());
  std::vector<VertexId> dst(cap + 1, 0xdeadbeef);
  ScratchArena arena;
  KernelStats stats;

  dst.assign(cap + 1, 0xdeadbeef);
  std::size_t n = MergeIntersectInto(dst.data(), a, b, &stats);
  EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want)
      << "merge";

  dst.assign(cap + 1, 0xdeadbeef);
  n = GallopIntersectInto(dst.data(), a, b, &stats);
  EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want)
      << "gallop";
  // Probing order is symmetric in the result.
  dst.assign(cap + 1, 0xdeadbeef);
  n = GallopIntersectInto(dst.data(), b, a, &stats);
  EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want)
      << "gallop swapped";

  if (check_bitset && !a.empty() && !b.empty()) {
    dst.assign(cap + 1, 0xdeadbeef);
    const ScratchArena::Mark before = arena.Save();
    n = BitsetIntersectInto(dst.data(), a, b, arena, &stats);
    EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want)
        << "bitset";
    // The kernel's packing scratch must be released on return.
    const ScratchArena::Mark after = arena.Save();
    EXPECT_EQ(before.chunk, after.chunk);
    EXPECT_EQ(before.used, after.used);
  }

  // Adaptive dispatch, with and without an arena.
  dst.assign(cap + 1, 0xdeadbeef);
  n = IntersectInto(dst.data(), a, b, &arena, &stats);
  EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want)
      << "adaptive+arena";
  dst.assign(cap + 1, 0xdeadbeef);
  n = IntersectInto(dst.data(), a, b, nullptr, &stats);
  EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want)
      << "adaptive";
  EXPECT_EQ(IntersectSize(a, b, &arena, &stats), want.size());
  EXPECT_EQ(IntersectSize(a, b), want.size());

  // The unconditional-write kernels must not write past min(|a|,|b|).
  EXPECT_EQ(dst[cap], 0xdeadbeefu);
}

TEST(KernelsPropertyTest, RandomizedAgainstOracle) {
  std::mt19937 rng(20230817);
  std::uniform_int_distribution<std::size_t> size_a(0, 300);
  std::uniform_int_distribution<std::size_t> ratio(1, 24);
  std::uniform_int_distribution<std::uint32_t> density(1, 80);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t na = size_a(rng);
    const std::size_t nb = std::min<std::size_t>(na * ratio(rng), 4000);
    std::vector<VertexId> a = RandomSet(rng, na, density(rng));
    std::vector<VertexId> b = RandomSet(rng, nb, density(rng));
    // Half the trials share a window (overlap likely); the rest are
    // independent windows (overlap coincidental).
    if (trial % 2 == 0 && !a.empty() && !b.empty()) {
      const VertexId shift = std::min(a.front(), b.front());
      for (VertexId& x : b) x = x - b.front() + shift;
    }
    ExpectAllKernelsMatch(a, b);
  }
}

TEST(KernelsPropertyTest, AdversarialSkew1To1024) {
  std::mt19937 rng(7);
  std::vector<VertexId> big = RandomSet(rng, 16384, 5);
  // Small side sampled from the big side: every element hits.
  std::vector<VertexId> small;
  std::sample(big.begin(), big.end(), std::back_inserter(small), 16, rng);
  ExpectAllKernelsMatch(small, big);
  // And a small side that misses everything (odd offsets of a gap-2 set).
  std::vector<VertexId> miss;
  for (VertexId v : small) miss.push_back(v + 1);
  miss.erase(std::unique(miss.begin(), miss.end()), miss.end());
  ExpectAllKernelsMatch(miss, big);
}

TEST(KernelsPropertyTest, AllEqual) {
  std::mt19937 rng(11);
  std::vector<VertexId> a = RandomSet(rng, 500, 3);
  ExpectAllKernelsMatch(a, a);
}

TEST(KernelsPropertyTest, DisjointInterleavedAndSeparated) {
  std::vector<VertexId> evens;
  std::vector<VertexId> odds;
  for (VertexId v = 0; v < 512; ++v) {
    (v % 2 == 0 ? evens : odds).push_back(v);
  }
  ExpectAllKernelsMatch(evens, odds);  // interleaved, zero hits.
  std::vector<VertexId> high;
  for (VertexId v = 10000; v < 10256; ++v) high.push_back(v);
  // Separated windows: the dispatch short-circuits, the forced kernels
  // must still agree.
  ExpectAllKernelsMatch(evens, high);
}

TEST(KernelsPropertyTest, EmptyAndSingleElement) {
  const std::vector<VertexId> empty;
  const std::vector<VertexId> one{42};
  const std::vector<VertexId> other{41};
  const std::vector<VertexId> many{1, 2, 42, 99};
  ExpectAllKernelsMatch(empty, empty);
  ExpectAllKernelsMatch(empty, many);
  ExpectAllKernelsMatch(many, empty);
  ExpectAllKernelsMatch(one, one);
  ExpectAllKernelsMatch(one, other);
  ExpectAllKernelsMatch(one, many);
  ExpectAllKernelsMatch(many, one);
}

TEST(KernelsPropertyTest, MaxIdBoundaries) {
  const VertexId top = std::numeric_limits<VertexId>::max();
  // Narrow window parked at the very top of the id space: the bitset
  // window arithmetic must not overflow 32 bits.
  std::vector<VertexId> a;
  std::vector<VertexId> b;
  for (VertexId off = 200; off > 0; off -= 2) a.push_back(top - off);
  for (VertexId off = 201; off > 0; off -= 3) b.push_back(top - off);
  a.push_back(top);
  b.push_back(top);
  ExpectAllKernelsMatch(a, b);
  // Extreme spread (0 and top in the same set): the forced bitset kernel
  // would pack a 4G-bit window, so only the other kernels run; the
  // adaptive dispatch must classify this as sparse and still be exact.
  std::vector<VertexId> spread{0, 1, 65536, top - 1, top};
  std::vector<VertexId> mid{1, 70000, top - 1};
  ExpectAllKernelsMatch(spread, mid, /*check_bitset=*/false);
}

TEST(KernelsPropertyTest, FusedAttrCountsMatchesManualCount) {
  std::mt19937 rng(99);
  const AttrId num_attrs = 3;
  std::vector<VertexId> a = RandomSet(rng, 400, 4);
  std::vector<VertexId> b = RandomSet(rng, 900, 4);
  // Attribute array covering the whole id domain of the inputs.
  std::vector<AttrId> attrs(b.back() + std::uint64_t{2});
  std::uniform_int_distribution<AttrId> attr(0, num_attrs - 1);
  for (AttrId& x : attrs) x = attr(rng);

  const std::vector<VertexId> want = Oracle(a, b);
  std::vector<std::uint32_t> want_counts(num_attrs, 0);
  for (VertexId v : want) ++want_counts[attrs[v]];

  ScratchArena arena;
  KernelStats stats;
  std::vector<VertexId> dst(std::min(a.size(), b.size()));
  std::vector<std::uint32_t> counts(num_attrs, 0);
  const std::size_t n = IntersectWithAttrCounts(
      dst.data(), a, b, attrs, counts.data(), &arena, &stats);
  EXPECT_EQ(std::vector<VertexId>(dst.begin(), dst.begin() + n), want);
  EXPECT_EQ(counts, want_counts);
  EXPECT_GT(stats.calls, 0u);
}

TEST(KernelsPropertyTest, StatsCountDispatchedKernels) {
  std::mt19937 rng(5);
  ScratchArena arena;
  KernelStats stats;
  std::vector<VertexId> dst(4096);

  // Skewed -> gallop.
  std::vector<VertexId> small = RandomSet(rng, 8, 4);
  std::vector<VertexId> large = RandomSet(rng, 4096, 4);
  IntersectInto(dst.data(), small, large, &arena, &stats);
  EXPECT_EQ(stats.gallop, 1u);

  // Balanced + dense + arena -> bitset.
  std::vector<VertexId> d1 = RandomSet(rng, 512, 2);
  std::vector<VertexId> d2 = RandomSet(rng, 512, 2);
  IntersectInto(dst.data(), d1, d2, &arena, &stats);
  EXPECT_EQ(stats.bitset, 1u);
  // Same inputs without an arena fall back to the merge.
  IntersectInto(dst.data(), d1, d2, nullptr, &stats);
  EXPECT_EQ(stats.merge, 1u);

  EXPECT_EQ(stats.calls, 3u);
  EXPECT_GT(stats.steps, 0u);

  KernelStats total;
  MergeKernelStats(total, stats);
  MergeKernelStats(total, stats);
  EXPECT_EQ(total.calls, 2 * stats.calls);
  EXPECT_EQ(total.steps, 2 * stats.steps);
}

TEST(ScratchArenaTest, MarksRewindAndChunksGrow) {
  ScratchArena arena;
  EXPECT_EQ(arena.HighWaterBytes(), 0u);

  const ScratchArena::Mark root = arena.Save();
  std::uint32_t* a = arena.AllocU32(100);
  for (int i = 0; i < 100; ++i) a[i] = i;
  const std::size_t after_first = arena.HighWaterBytes();
  EXPECT_GT(after_first, 0u);

  {
    ArenaScope scope(arena);
    // Larger than the first chunk: forces a second chunk while `a` stays
    // live in the first one.
    std::uint32_t* big = arena.AllocU32(64 * 1024);
    big[0] = 7;
    big[64 * 1024 - 1] = 9;
    EXPECT_GT(arena.HighWaterBytes(), after_first);
    // The earlier block must not have moved or been clobbered.
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], static_cast<std::uint32_t>(i));
  }
  const std::size_t high_water = arena.HighWaterBytes();

  // Rewinding freed the big block's words; an identical allocation cycle
  // must reuse the grown chunks without acquiring more storage.
  for (int round = 0; round < 3; ++round) {
    ArenaScope scope(arena);
    std::uint32_t* big = arena.AllocU32(64 * 1024);
    big[0] = round;
    EXPECT_EQ(arena.HighWaterBytes(), high_water);
  }

  arena.Rewind(root);
  arena.Reset();
  EXPECT_EQ(arena.HighWaterBytes(), high_water);  // grow-only, kept.
  std::uint32_t* again = arena.AllocU32(100);
  EXPECT_EQ(again, a);  // Reset rewound to the very start.
}

TEST(ScratchArenaTest, IdVecAndCountVec) {
  ScratchArena arena;
  IdVec v(arena, 4);
  EXPECT_TRUE(v.empty());
  v.push_back(3);
  v.push_back(1);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 3u);
  EXPECT_EQ(v.view().size(), 2u);
  v.clear();
  EXPECT_TRUE(v.empty());
  // Kernel-style use: write through data(), then set_size.
  v.data()[0] = 8;
  v.data()[1] = 9;
  v.set_size(2);
  EXPECT_EQ(std::vector<VertexId>(v.begin(), v.end()),
            (std::vector<VertexId>{8, 9}));

  CountVec zero = CountVec::Zero(arena, 3);
  EXPECT_EQ(zero[0] + zero[1] + zero[2], 0u);
  zero[1] = 5;
  CountVec copy = CountVec::CopyOf(arena, zero.view());
  EXPECT_EQ(copy[1], 5u);
  copy[1] = 6;
  EXPECT_EQ(zero[1], 5u);  // independent storage.
}

TEST(BitsetViewTest, MatchesIntersectSize) {
  std::mt19937 rng(123);
  ScratchArena arena;
  std::vector<VertexId> base = RandomSet(rng, 700, 6);
  ArenaScope scope(arena);
  BitsetView view = BitsetView::Load(arena, base);
  ASSERT_TRUE(view.loaded());
  EXPECT_FALSE(BitsetView().loaded());

  EXPECT_TRUE(view.Test(base.front()));
  EXPECT_TRUE(view.Test(base.back()));
  EXPECT_FALSE(view.Test(base.front() - 1));
  EXPECT_FALSE(view.Test(base.back() + 1));

  KernelStats stats;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<VertexId> probe = RandomSet(rng, 120, 7);
    EXPECT_EQ(view.CountHits(probe, &stats), IntersectSize(probe, base));
  }
  EXPECT_EQ(stats.calls, 50u);
}

// The engines' recursion must be allocation-free: after a warm-up run has
// grown the per-worker arena to its high-water mark, a second identical
// run may only allocate a driver-level constant — independent of the
// number of search nodes visited.
TEST(KernelsEngineTest, RecursionIsAllocationFree) {
  BipartiteGraph g = RandomSmallGraph(/*seed=*/42, /*max_side=*/14,
                                      /*density=*/0.5);
  FairBicliqueParams params{1, 1, 2, 0.0};
  EnumOptions options;
  options.pruning = PruningLevel::kNone;  // isolate the search itself.
  options.num_threads = 1;

  CountSink warm;
  EnumStats warm_stats = EnumerateSSFBC(g, params, options, warm.AsSink());
  ASSERT_GT(warm_stats.search_nodes, 100u);

  CountSink sink;
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  EnumStats stats = EnumerateSSFBC(g, params, options, sink.AsSink());
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(sink.count(), warm.count());
  // Measured budget: a driver-level constant (ordering permutation, stats
  // plumbing, sink wrappers; ~26 blocks) plus 4 blocks per emitted result
  // (the Biclique's two vectors, copied once by the remap wrapper) — and
  // nothing proportional to search_nodes. A recursion that allocated even
  // one block per branch would blow through this bound.
  EXPECT_GT(stats.search_nodes, 100u);
  EXPECT_GT(stats.search_nodes, 4 * sink.count());  // bound is meaningful.
  EXPECT_LT(allocs, 64 + 6 * sink.count())
      << "recursion allocated on the heap; nodes=" << stats.search_nodes;
}

// 8-worker run for the sanitizer suites: TSan sees the arena and kernel
// telemetry under real concurrency, and the result digest must match the
// serial run exactly.
TEST(KernelsEngineTest, EightWorkerRunMatchesSerial) {
  BipartiteGraph g = RandomSmallGraph(/*seed=*/77, /*max_side=*/12,
                                      /*density=*/0.55);
  FairBicliqueParams params{1, 1, 1, 0.0};

  EnumOptions serial;
  serial.num_threads = 1;
  CollectSink serial_sink;
  EnumerateSSFBC(g, params, serial, serial_sink.AsSink());

  EnumOptions parallel;
  parallel.num_threads = 8;
  CollectSink parallel_sink;
  EnumStats stats = EnumerateSSFBC(g, params, parallel, parallel_sink.AsSink());

  EXPECT_EQ(testing::Canonicalize(parallel_sink.results()),
            testing::Canonicalize(serial_sink.results()));
  EXPECT_GT(stats.kernels.calls, 0u);  // telemetry survived the merge.
}

}  // namespace
}  // namespace fairbc
