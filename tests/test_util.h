#ifndef FAIRBC_TESTS_TEST_UTIL_H_
#define FAIRBC_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "core/enumerate.h"
#include "graph/bipartite_graph.h"

namespace fairbc::testing {

/// Builds a small attributed bipartite graph from explicit pieces.
BipartiteGraph MakeGraph(VertexId num_upper, VertexId num_lower,
                         const std::vector<std::pair<VertexId, VertexId>>& edges,
                         const std::vector<AttrId>& upper_attrs,
                         const std::vector<AttrId>& lower_attrs,
                         AttrId num_upper_attrs = 2, AttrId num_lower_attrs = 2);

/// Random small graph for property tests: sides in [2, max_side], edge
/// probability `density`, attributes uniform over 2 classes per side.
BipartiteGraph RandomSmallGraph(std::uint64_t seed, VertexId max_side,
                                double density, AttrId num_attrs = 2);

/// The paper's Fig. 1(a) example graph: squares u1..u5 (upper, attrs
/// a/b), circles v1..v9 (lower, attrs a/b). Our ids are zero-based.
BipartiteGraph PaperExampleGraph();

/// Canonical sorted copy for set comparison.
std::vector<Biclique> Canonicalize(std::vector<Biclique> bicliques);

/// Runs a pipeline entry point and returns canonicalized results.
template <typename Fn>
std::vector<Biclique> Collect(Fn&& fn, const BipartiteGraph& g,
                              const FairBicliqueParams& params,
                              const EnumOptions& options = {}) {
  CollectSink sink;
  fn(g, params, options, sink.AsSink());
  return Canonicalize(sink.results());
}

}  // namespace fairbc::testing

#endif  // FAIRBC_TESTS_TEST_UTIL_H_
